// tolerance-fleet runs scenario suites on the parallel fleet engine: a
// suite grid — built-in or loaded from a JSON definition — expands to
// hundreds of emulation scenarios, executes on a bounded worker pool with
// deterministic per-scenario seeding, and streams per-cell T(A), T(R),
// F(R), node-count and cost summaries.
//
// Policy kinds resolve through the strategy registry, so suites can grid
// the exact DP strategy, the baselines, and the learned kinds
// ("learned:cem", "learned:ppo", ...) side by side; -list-strategies shows
// every registered kind. Ctrl-C cancels cleanly: with -checkpoint the
// completed prefix survives and the run restarts with -resume.
//
// Single-machine runs:
//
//	tolerance-fleet -list
//	tolerance-fleet -list-strategies
//	tolerance-fleet -suite learned-smoke
//	tolerance-fleet -suite paper-grid -workers 8
//	tolerance-fleet -suite scada-sweep -format csv > scada.csv
//	tolerance-fleet -dump-suite paper-grid > grid.json
//	tolerance-fleet -suite-file grid.json -format json
//
// Scale-out runs — shard a grid across machines, survive kills, and fold
// the pieces back together. A .gz checkpoint suffix gzip-compresses the
// record stream for very large grids; -resume and -merge read it
// transparently. -learned-workers parallelizes each learned:* training run
// (bit-identical output at any value):
//
//	tolerance-fleet -suite-file grid.json -shard 0/2 -checkpoint s0.jsonl   # machine A
//	tolerance-fleet -suite-file grid.json -shard 1/2 -checkpoint s1.jsonl   # machine B
//	tolerance-fleet -merge -format json s0.jsonl s1.jsonl                   # anywhere
//	tolerance-fleet -suite-file grid.json -checkpoint run.jsonl -resume     # after a kill
//	tolerance-fleet -suite-file grid.json -checkpoint run.jsonl.gz          # compressed records
//	tolerance-fleet -suite learned-smoke -learned-workers 8                 # parallel training
//
// Distributed runs — one coordinator owns the suite and leases
// index-contiguous scenario ranges to workers over TCP; workers need no
// suite file (it travels in the handshake). Leases from workers that stop
// heartbeating are re-leased, so worker crashes cost bounded rework; a
// coordinator crash resumes from its checkpoint. The merged stdout is
// byte-identical to a single-machine run of the same suite (see
// docs/OPERATIONS.md for the runbook):
//
//	tolerance-fleet -serve :7001 -suite-file grid.json -checkpoint run.jsonl
//	tolerance-fleet -connect hostA:7001 -workers 8                          # each machine
//	tolerance-fleet -connect hostA:7001 -listen 0.0.0.0:7002 -advertise hostB:7002
//
// Output is deterministic: the same suite and seed produce byte-identical
// results for any -workers value, and merging a complete shard set
// reproduces the unsharded output byte-for-byte. Telemetry — the progress
// meter, the post-run summary, -metrics-addr and -manifest — travels on
// side channels only (stderr, the manifest file, the HTTP endpoint); stdout
// carries only deterministic quantities, so suite output is byte-identical
// with telemetry on or off.
//
// Introspection:
//
//	tolerance-fleet -suite paper-grid -metrics-addr :8417       # curl /metrics, /debug/pprof/heap
//	tolerance-fleet -suite paper-grid -manifest run.json        # run manifest trailer
//	tolerance-fleet -suite paper-grid -checkpoint r.jsonl       # + implicit r.jsonl.manifest.json
package main

import (
	"context"
	"encoding/csv"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"

	"tolerance/internal/chaos"
	"tolerance/internal/fleet"
	"tolerance/internal/profiling"
	"tolerance/internal/strategies"
	"tolerance/internal/telemetry"
	"tolerance/internal/transport"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tolerance-fleet:", err)
		os.Exit(1)
	}
}

func run() (retErr error) {
	suiteName := flag.String("suite", "paper-grid", "built-in suite to run (-list shows all)")
	listStrategies := flag.Bool("list-strategies", false, "list registered strategies (valid policy kinds) and exit")
	suiteFile := flag.String("suite-file", "", "JSON suite definition to run instead of a built-in (see -dump-suite)")
	dumpSuite := flag.String("dump-suite", "", "print the named built-in suite as JSON (with overrides applied) and exit")
	list := flag.Bool("list", false, "list built-in suites and exit")
	workers := flag.Int("workers", 0, "worker pool size (0 = min(GOMAXPROCS, 8))")
	seed := flag.Int64("seed", 0, "override the suite master seed (0 = suite default)")
	steps := flag.Int("steps", 0, "override steps per scenario (0 = suite default)")
	seedsPerCell := flag.Int("seeds", 0, "override seeds per grid cell (0 = suite default)")
	fitSamples := flag.Int("fit", 0, "override Ẑ-estimation samples (0 = suite default)")
	learnedWorkers := flag.Int("learned-workers", 0, "concurrent evaluations inside each learned:* training run (0 = suite value, else GOMAXPROCS); output is bit-identical for any value")
	shardSpec := flag.String("shard", "", "run only shard i of n (\"i/n\"); requires -checkpoint to keep the shard's records")
	serveAddr := flag.String("serve", "", "run as the fleet coordinator: listen on this address (e.g. \":7001\"), lease scenario ranges to -connect workers, and print the merged result")
	connectAddr := flag.String("connect", "", "run as a remote fleet worker for the coordinator at this host:port; the suite arrives over the wire")
	listenAddr := flag.String("listen", "127.0.0.1:0", "worker bind address for coordinator replies (use a routable IP for cross-machine runs)")
	advertiseAddr := flag.String("advertise", "", "worker address the coordinator should dial back (defaults to -listen's bound address; needed when binding 0.0.0.0 or behind NAT)")
	leaseScenarios := flag.Int("lease", 0, "coordinator: scenarios per lease (0 = total/16 clamped to [1,256])")
	heartbeat := flag.Duration("heartbeat", fleet.DefaultHeartbeat, "coordinator: worker keep-alive interval advertised in the handshake")
	leaseTimeout := flag.Duration("lease-timeout", 0, "coordinator: re-lease a worker's range after this long without heartbeats (0 = 5x -heartbeat)")
	checkpoint := flag.String("checkpoint", "", "record completed scenarios to this file (JSONL; a .gz suffix gzips it, and -resume/-merge read .gz transparently); doubles as the shard result file")
	resume := flag.Bool("resume", false, "load the -checkpoint file first and skip scenarios it already holds")
	merge := flag.Bool("merge", false, "fold the shard/checkpoint files given as arguments into the full-suite result and print it")
	format := flag.String("format", "table", "output format: table | json | csv")
	quiet := flag.Bool("quiet", false, "suppress the progress meter and telemetry summary on stderr")
	noFitCache := flag.Bool("no-fit-cache", false, "refit Ẑ inside every scenario instead of once per suite (diagnostic; output is identical)")
	metricsAddr := flag.String("metrics-addr", "", "serve live telemetry on this address: /metrics (JSON snapshot), /debug/vars, /debug/pprof/* (\":0\" picks a free port, printed to stderr)")
	manifestPath := flag.String("manifest", "", "write the run manifest JSON to this file (\"-\" = stderr; defaults to <checkpoint>.manifest.json when -checkpoint is set)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	chaosProfile := flag.String("chaos-profile", "", "arm the seeded fault-injection plane with this profile ("+strings.Join(chaos.Profiles(), " | ")+"); faults hit the transport and checkpoint layers only — the result must stay byte-identical")
	chaosSeed := flag.Int64("chaos-seed", 1, "seed for the chaos plan's deterministic fault schedule")
	chaosDescribe := flag.Bool("chaos-describe", false, "print the armed chaos plan (profile, seed, schedule digest) and exit")
	flag.Parse()

	stopProfiles, err := profiling.Start(*cpuprofile, *memprofile)
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProfiles(); perr != nil && retErr == nil {
			retErr = perr
		}
	}()

	// The chaos plan arms before any transport or checkpoint exists, so
	// every layer below sees the same seeded schedule. -chaos-describe is
	// the out-of-band certificate: CI compares its digest against the
	// chaos.plan_digest gauge in each process's manifest.
	var plan *chaos.Plan
	if *chaosProfile != "" {
		plan, err = chaos.NewPlanByName(*chaosProfile, *chaosSeed)
		if err != nil {
			return err
		}
	}
	if *chaosDescribe {
		if plan == nil {
			return fmt.Errorf("-chaos-describe needs -chaos-profile")
		}
		fmt.Println(plan.Describe())
		return nil
	}

	// Telemetry is always collected (recording is allocation-free and all
	// reporting stays off stdout); -metrics-addr additionally serves it live.
	col := telemetry.New()
	plan.Instrument(col)
	if *metricsAddr != "" {
		srv, err := telemetry.Serve(*metricsAddr, col)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "telemetry: serving http://%s/metrics\n", srv.Addr())
	}

	switch {
	case *list:
		for _, s := range fleet.Builtin() {
			backend := ""
			if len(s.Backends) > 0 {
				backend = fmt.Sprintf("  [backend: %s]", strings.Join(s.Backends, ","))
			}
			fmt.Printf("%-13s %4d scenarios, %3d cells  %s%s\n",
				s.Name, s.NumScenarios(), s.NumCells(), s.Description, backend)
		}
		return nil
	case *listStrategies:
		for _, name := range strategies.Names() {
			s, ok := strategies.Lookup(name)
			if !ok {
				continue
			}
			fmt.Printf("%-18s %s\n", name, s.Describe())
		}
		return nil
	case *merge:
		return runMerge(flag.Args(), *format, col, *manifestPath, *quiet)
	case *connectAddr != "":
		if *serveAddr != "" {
			return fmt.Errorf("-serve and -connect are different roles; run them as separate processes")
		}
		if *checkpoint != "" || *shardSpec != "" || *resume || *suiteFile != "" || *dumpSuite != "" {
			return fmt.Errorf("-connect workers take no suite or checkpoint flags; the coordinator owns both")
		}
		return runConnect(*connectAddr, *listenAddr, *advertiseAddr, *workers, col, plan, *quiet)
	}
	if flag.NArg() > 0 {
		return fmt.Errorf("unexpected arguments %v (shard files are only accepted with -merge)", flag.Args())
	}

	var suite fleet.Suite
	if *suiteFile != "" {
		if *dumpSuite != "" {
			return fmt.Errorf("-dump-suite names a built-in suite and conflicts with -suite-file")
		}
		suite, err = fleet.LoadSuiteFile(*suiteFile)
	} else {
		name := *suiteName
		if *dumpSuite != "" {
			name = *dumpSuite
		}
		suite, err = fleet.Lookup(name)
	}
	if err != nil {
		return err
	}
	if *seed != 0 {
		suite.Seed = *seed
	}
	if *steps != 0 {
		suite.Steps = *steps
	}
	if *seedsPerCell != 0 {
		suite.SeedsPerCell = *seedsPerCell
	}
	if *fitSamples != 0 {
		suite.FitSamples = *fitSamples
	}
	if *learnedWorkers != 0 {
		if *learnedWorkers < 0 {
			return fmt.Errorf("-learned-workers %d: must be >= 0", *learnedWorkers)
		}
		// A throughput knob only: it is excluded from the suite fingerprint,
		// so checkpoints and shards taken at other values stay compatible.
		lc := fleet.LearnedConfig{}
		if suite.Learned != nil {
			lc = *suite.Learned
		}
		lc.Workers = *learnedWorkers
		suite.Learned = &lc
	}

	if *dumpSuite != "" {
		data, err := fleet.DumpSuite(suite)
		if err != nil {
			return err
		}
		_, err = os.Stdout.Write(data)
		return err
	}

	var shard fleet.Shard
	if *shardSpec != "" {
		if *serveAddr != "" {
			return fmt.Errorf("-serve and -shard conflict: the coordinator always owns the whole suite and leases ranges itself")
		}
		if shard, err = fleet.ParseShard(*shardSpec); err != nil {
			return err
		}
		if !shard.IsWhole() && *checkpoint == "" {
			return fmt.Errorf("-shard %s needs -checkpoint to keep the shard's records for -merge", shard)
		}
	}
	if *resume && *checkpoint == "" {
		return fmt.Errorf("-resume needs -checkpoint")
	}

	cache := fleet.NewStrategyCache()
	cache.Instrument(col)
	cfg := fleet.Config{
		Workers: *workers, Cache: cache, Shard: shard,
		NoFitCache: *noFitCache, Telemetry: col, Chaos: plan,
	}
	if plan != nil && !*quiet {
		fmt.Fprintf(os.Stderr, "%s\n", plan.Describe())
	}
	if !*quiet {
		// The meter throttles itself to ~10 Hz wall-clock, so the engine's
		// per-fold callback does not turn into thousands of stderr writes a
		// second on fast grids.
		meter := telemetry.NewMeter(os.Stderr)
		meter.Extra = func() string { return cacheHitRate(cache.Stats()) }
		cfg.Progress = func(done, total int) {
			meter.Progress(done, total)
			if done == total {
				meter.Finish()
			}
		}
	}

	// Wire the checkpoint: on resume, reload prior records and append;
	// otherwise start a fresh file.
	var writer *fleet.CheckpointWriter
	if *checkpoint != "" {
		if *resume {
			ck, err := fleet.ReadCheckpoint(*checkpoint)
			if err != nil {
				return err
			}
			if got, want := ck.Suite.Fingerprint(), suite.Fingerprint(); got != want {
				return fmt.Errorf("checkpoint %s was written by a different suite (fingerprint %s, this run %s); "+
					"re-check the suite file and overrides", *checkpoint, got, want)
			}
			if ck.Shard.String() != shard.String() {
				return fmt.Errorf("checkpoint %s covers shard %s, this run is shard %s",
					*checkpoint, ck.Shard, shard)
			}
			cfg.Completed = ck.Records
			if !*quiet {
				fmt.Fprintf(os.Stderr, "resuming: %d scenarios already complete\n", len(ck.Records))
			}
			writer, err = fleet.AppendCheckpoint(*checkpoint, ck)
		} else {
			writer, err = fleet.CreateCheckpoint(*checkpoint, suite, shard)
		}
		if err != nil {
			return err
		}
		defer func() {
			if writer != nil {
				writer.Close()
			}
		}()
		writer.Instrument(col)
		if plan != nil {
			// Disk faults (torn tails, bit rot) hit only record lines: the
			// sink interposes below the JSON encoder, so the header written
			// by Create/Append is already safely past.
			writer.InterposeSink(plan.WrapCheckpointSink)
		}
		cfg.OnRecord = writer.Append
	}

	// Ctrl-C / SIGTERM cancels the context: the worker pool drains
	// promptly and any -checkpoint file keeps the completed index-ordered
	// prefix, so an interrupted run restarts with -resume. After the first
	// signal the handler is released, so a second Ctrl-C force-kills.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	go func() {
		<-ctx.Done()
		stopSignals()
	}()

	manifest := telemetry.NewManifest()
	var res *fleet.Result
	if *serveAddr != "" {
		// Coordinator mode: same suite, checkpoint and resume wiring as a
		// local run, but execution happens on -connect workers. On SIGINT
		// the drain broadcast goes out before we return, and the checkpoint
		// keeps the ingested index-ordered prefix for -resume.
		ep, eperr := transport.ListenTCP(*serveAddr)
		if eperr != nil {
			return eperr
		}
		defer ep.Close()
		col.CounterFunc(fleet.MetricFramesQuarantined, ep.QuarantinedFrames)
		ccfg := fleet.CoordinatorConfig{
			Endpoint:       plan.WrapEndpoint(ep),
			LeaseScenarios: *leaseScenarios,
			Heartbeat:      *heartbeat,
			LeaseTimeout:   *leaseTimeout,
			Completed:      cfg.Completed,
			OnRecord:       cfg.OnRecord,
			Progress:       cfg.Progress,
			Telemetry:      col,
		}
		if !*quiet {
			ccfg.Logf = stderrLogf
			fmt.Fprintf(os.Stderr, "coordinator: listening on %s\n", ep.Addr())
		}
		res, err = fleet.Coordinate(ctx, suite, ccfg)
	} else {
		res, err = fleet.Run(ctx, suite, cfg)
	}
	if err != nil {
		if errors.Is(err, context.Canceled) && *checkpoint != "" {
			fmt.Fprintf(os.Stderr, "interrupted: %s keeps the completed prefix; rerun with -resume\n", *checkpoint)
		}
		return err
	}
	if writer != nil {
		if err := writer.Close(); err != nil {
			return err
		}
		writer = nil
	}
	if !*quiet {
		printSummary(os.Stderr, col.Snapshot())
	}
	mp := *manifestPath
	if mp == "" && *checkpoint != "" {
		mp = *checkpoint + ".manifest.json"
	}
	if mp != "" {
		manifest.Suite = suite.Name
		manifest.Fingerprint = suite.Fingerprint()
		manifest.Seed = suite.Seed
		manifest.Shard = shard.String()
		manifest.Scenarios = res.Scenarios
		manifest.Workers = *workers
		if manifest.Workers <= 0 {
			manifest.Workers = runtime.GOMAXPROCS(0)
		}
		manifest.Finish(col)
		if err := manifest.WriteFile(mp); err != nil {
			return err
		}
		if !*quiet && mp != "-" {
			fmt.Fprintf(os.Stderr, "manifest: %s\n", mp)
		}
	}
	return writeResult(os.Stdout, res, *format)
}

// runConnect runs the worker role: join the coordinator, execute leased
// scenario ranges on the local pool, stream the records back, and exit on
// drain. Ctrl-C drains gracefully — the completed prefix of the current
// lease is already shipped, and a Goodbye lets the coordinator re-lease
// the remainder immediately.
func runConnect(coordAddr, listen, advertise string, workers int, col *telemetry.Collector, plan *chaos.Plan, quiet bool) error {
	ep, err := transport.ListenTCPAdvertise(listen, advertise)
	if err != nil {
		return err
	}
	defer ep.Close()
	col.CounterFunc(fleet.MetricFramesQuarantined, ep.QuarantinedFrames)

	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	go func() {
		<-ctx.Done()
		stopSignals() // a second Ctrl-C force-kills
	}()

	cache := fleet.NewStrategyCache()
	cache.Instrument(col)
	wcfg := fleet.WorkerConfig{
		Endpoint:    plan.WrapEndpoint(ep),
		Coordinator: coordAddr,
		Workers:     workers,
		Cache:       cache,
		Telemetry:   col,
		Chaos:       plan,
	}
	if !quiet {
		wcfg.Logf = stderrLogf
		fmt.Fprintf(os.Stderr, "worker: %s -> coordinator %s\n", ep.Addr(), coordAddr)
		if plan != nil {
			fmt.Fprintf(os.Stderr, "%s\n", plan.Describe())
		}
	}
	err = fleet.ConnectWorker(ctx, wcfg)
	switch {
	case errors.Is(err, fleet.ErrDrained):
		// The run was already complete when we arrived; not a failure.
		if !quiet {
			fmt.Fprintln(os.Stderr, "worker: coordinator had no work")
		}
		return nil
	case errors.Is(err, context.Canceled):
		if !quiet {
			fmt.Fprintln(os.Stderr, "worker: interrupted; coordinator notified")
		}
		return nil
	case err != nil:
		return err
	}
	if !quiet {
		printSummary(os.Stderr, col.Snapshot())
	}
	return nil
}

// stderrLogf is the coordinator/worker operational log sink: one line per
// event on stderr, never stdout.
func stderrLogf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
}

// cacheHitRate renders the strategy cache's hit rate for the meter line
// ("" until there have been any requests). Arena reuses are excluded: they
// count slab recycling inside solves, not requests answered from cache.
func cacheHitRate(stats fleet.CacheStats) string {
	hits := stats.PolicyHits + stats.RecoveryHits + stats.ReplicationHits + stats.FitHits
	misses := stats.PolicyBuilds + stats.RecoverySolves + stats.ReplicationSolves + stats.FitSolves
	if hits+misses == 0 {
		return ""
	}
	return fmt.Sprintf("cache %.0f%% hit", 100*float64(hits)/float64(hits+misses))
}

// printSummary reports the run's headline numbers from the telemetry
// snapshot — the single source of truth the manifest and /metrics read
// too, so -quiet, -merge and resume runs can never disagree with it.
func printSummary(w io.Writer, s telemetry.Snapshot) {
	folded := s.Counter(fleet.MetricScenariosFolded)
	replayed := s.Counter(fleet.MetricScenariosReplayed)
	line := fmt.Sprintf("telemetry: %d scenarios folded", folded)
	if replayed > 0 {
		line += fmt.Sprintf(" (%d replayed from checkpoint)", replayed)
	}
	for _, p := range s.Phases {
		if p.Name == "fleet.run" && p.Seconds > 0 {
			line += fmt.Sprintf(", %.0f scenarios/s", float64(folded-replayed)/p.Seconds)
			break
		}
	}
	// Merge-only and fully-replayed resume runs never touch the strategy
	// cache; a zero-valued cache line there would misread as "ran but
	// solved nothing", so it is printed only when the cache saw traffic.
	// cache.arena_reuses is deliberately not part of the traffic gate or
	// the line: arena pooling is memory reuse inside a solve, not a cache
	// hit, so e.g. a -no-fit-cache run must not have its arena activity
	// reported as cache activity.
	builds := s.Counter("cache.policy_builds")
	solves := s.Counter("cache.recovery_solves") + s.Counter("cache.replication_solves") +
		s.Counter("cache.fit_solves")
	hits := s.Counter("cache.policy_hits") + s.Counter("cache.recovery_hits") +
		s.Counter("cache.replication_hits") + s.Counter("cache.fit_hits")
	if builds+solves+hits > 0 {
		line += fmt.Sprintf("; strategy cache: %d policies built, %d solves, %d hits", builds, solves, hits)
	}
	fmt.Fprintln(w, line)
}

// runMerge folds a complete shard set back into the single-machine result.
// Merged records count as replayed folds on the collector, so the summary
// and an optional -manifest report through the same snapshot a live run
// uses.
func runMerge(paths []string, format string, col *telemetry.Collector, manifestPath string, quiet bool) error {
	manifest := telemetry.NewManifest()
	suite, records, err := fleet.ReadShardSet(paths)
	if err != nil {
		return err
	}
	res, err := fleet.MergeRecords(suite, records)
	if err != nil {
		return err
	}
	col.Counter(fleet.MetricScenariosFolded).Add(0, int64(len(records)))
	col.Counter(fleet.MetricScenariosReplayed).Add(0, int64(len(records)))
	if !quiet {
		printSummary(os.Stderr, col.Snapshot())
	}
	if manifestPath != "" {
		manifest.Suite = suite.Name
		manifest.Fingerprint = suite.Fingerprint()
		manifest.Seed = suite.Seed
		manifest.Scenarios = res.Scenarios
		manifest.Finish(col)
		if err := manifest.WriteFile(manifestPath); err != nil {
			return err
		}
	}
	return writeResult(os.Stdout, res, format)
}

func writeResult(w io.Writer, res *fleet.Result, format string) error {
	switch format {
	case "json":
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(res)
	case "csv":
		return writeCSV(w, res)
	case "table":
		writeTable(w, res)
		return nil
	default:
		return fmt.Errorf("unknown format %q", format)
	}
}

func writeCSV(f io.Writer, res *fleet.Result) error {
	w := csv.NewWriter(f)
	header := []string{
		"suite", "cell", "policy", "pa", "pc1", "pc2", "pu", "eta",
		"lambda", "service", "n1", "smax", "deltaR", "f", "runs",
		"availability", "availability_ci", "quorum", "quorum_ci",
		"ttr", "ttr_ci", "fr", "fr_ci",
		"avg_nodes", "avg_nodes_ci", "avg_cost", "avg_cost_ci",
	}
	if err := w.Write(header); err != nil {
		return err
	}
	ff := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	fi := func(v int) string { return strconv.Itoa(v) }
	for _, c := range res.Cells {
		a := c.Aggregate
		row := []string{
			res.Suite, fi(c.Cell.Index), string(c.Cell.Policy),
			ff(c.Cell.PA), ff(c.Cell.PC1), ff(c.Cell.PC2), ff(c.Cell.PU), ff(c.Cell.Eta),
			ff(c.Cell.Workload.Lambda), ff(c.Cell.Workload.MeanServiceSteps),
			fi(c.Cell.N1), fi(c.Cell.SMax), fi(c.Cell.DeltaR), fi(c.Cell.F),
			strconv.FormatInt(c.Runs, 10),
			ff(a.Availability.Mean), ff(a.Availability.CI),
			ff(a.QuorumAvailability.Mean), ff(a.QuorumAvailability.CI),
			ff(a.TimeToRecovery.Mean), ff(a.TimeToRecovery.CI),
			ff(a.RecoveryFrequency.Mean), ff(a.RecoveryFrequency.CI),
			ff(a.AvgNodes.Mean), ff(a.AvgNodes.CI),
			ff(a.Cost.Mean), ff(a.Cost.CI),
		}
		if err := w.Write(row); err != nil {
			return err
		}
	}
	w.Flush()
	return w.Error()
}

func writeTable(w io.Writer, res *fleet.Result) {
	fmt.Fprintf(w, "suite %s (seed %d): %d scenarios over %d cells\n\n",
		res.Suite, res.Seed, res.Scenarios, len(res.Cells))
	fmt.Fprintf(w, "%4s  %-18s %5s %5s %3s %4s %5s  %8s %10s %9s %8s %7s %7s\n",
		"cell", "policy", "pA", "pC1", "N1", "ΔR", "runs", "T(A)", "T(A,quor)", "T(R)", "F(R)", "avg N", "cost")
	for _, c := range res.Cells {
		a := c.Aggregate
		fmt.Fprintf(w, "%4d  %-18s %5.3g %5.3g %3d %4d %5d  %8.3f %10.3f %9.2f %8.4f %7.2f %7.3f\n",
			c.Cell.Index, c.Cell.Policy, c.Cell.PA, c.Cell.PC1, c.Cell.N1, c.Cell.DeltaR, c.Runs,
			a.Availability.Mean, a.QuorumAvailability.Mean,
			a.TimeToRecovery.Mean, a.RecoveryFrequency.Mean,
			a.AvgNodes.Mean, a.Cost.Mean)
	}
}
