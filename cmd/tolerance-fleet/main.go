// tolerance-fleet runs scenario suites on the parallel fleet engine: a
// suite grid — built-in or loaded from a JSON definition — expands to
// hundreds of emulation scenarios, executes on a bounded worker pool with
// deterministic per-scenario seeding, and streams per-cell T(A), T(R),
// F(R), node-count and cost summaries.
//
// Policy kinds resolve through the strategy registry, so suites can grid
// the exact DP strategy, the baselines, and the learned kinds
// ("learned:cem", "learned:ppo", ...) side by side; -list-strategies shows
// every registered kind. Ctrl-C cancels cleanly: with -checkpoint the
// completed prefix survives and the run restarts with -resume.
//
// Single-machine runs:
//
//	tolerance-fleet -list
//	tolerance-fleet -list-strategies
//	tolerance-fleet -suite learned-smoke
//	tolerance-fleet -suite paper-grid -workers 8
//	tolerance-fleet -suite scada-sweep -format csv > scada.csv
//	tolerance-fleet -dump-suite paper-grid > grid.json
//	tolerance-fleet -suite-file grid.json -format json
//
// Scale-out runs — shard a grid across machines, survive kills, and fold
// the pieces back together. A .gz checkpoint suffix gzip-compresses the
// record stream for very large grids; -resume and -merge read it
// transparently. -learned-workers parallelizes each learned:* training run
// (bit-identical output at any value):
//
//	tolerance-fleet -suite-file grid.json -shard 0/2 -checkpoint s0.jsonl   # machine A
//	tolerance-fleet -suite-file grid.json -shard 1/2 -checkpoint s1.jsonl   # machine B
//	tolerance-fleet -merge -format json s0.jsonl s1.jsonl                   # anywhere
//	tolerance-fleet -suite-file grid.json -checkpoint run.jsonl -resume     # after a kill
//	tolerance-fleet -suite-file grid.json -checkpoint run.jsonl.gz          # compressed records
//	tolerance-fleet -suite learned-smoke -learned-workers 8                 # parallel training
//
// Output is deterministic: the same suite and seed produce byte-identical
// results for any -workers value, and merging a complete shard set
// reproduces the unsharded output byte-for-byte. Strategy-cache statistics
// go to stderr (they depend on how a run is partitioned; stdout carries
// only deterministic quantities).
package main

import (
	"context"
	"encoding/csv"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"syscall"

	"tolerance/internal/fleet"
	"tolerance/internal/profiling"
	"tolerance/internal/strategies"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tolerance-fleet:", err)
		os.Exit(1)
	}
}

func run() (retErr error) {
	suiteName := flag.String("suite", "paper-grid", "built-in suite to run (-list shows all)")
	listStrategies := flag.Bool("list-strategies", false, "list registered strategies (valid policy kinds) and exit")
	suiteFile := flag.String("suite-file", "", "JSON suite definition to run instead of a built-in (see -dump-suite)")
	dumpSuite := flag.String("dump-suite", "", "print the named built-in suite as JSON (with overrides applied) and exit")
	list := flag.Bool("list", false, "list built-in suites and exit")
	workers := flag.Int("workers", 0, "worker pool size (0 = min(GOMAXPROCS, 8))")
	seed := flag.Int64("seed", 0, "override the suite master seed (0 = suite default)")
	steps := flag.Int("steps", 0, "override steps per scenario (0 = suite default)")
	seedsPerCell := flag.Int("seeds", 0, "override seeds per grid cell (0 = suite default)")
	fitSamples := flag.Int("fit", 0, "override Ẑ-estimation samples (0 = suite default)")
	learnedWorkers := flag.Int("learned-workers", 0, "concurrent evaluations inside each learned:* training run (0 = suite value, else GOMAXPROCS); output is bit-identical for any value")
	shardSpec := flag.String("shard", "", "run only shard i of n (\"i/n\"); requires -checkpoint to keep the shard's records")
	checkpoint := flag.String("checkpoint", "", "record completed scenarios to this file (JSONL; a .gz suffix gzips it, and -resume/-merge read .gz transparently); doubles as the shard result file")
	resume := flag.Bool("resume", false, "load the -checkpoint file first and skip scenarios it already holds")
	merge := flag.Bool("merge", false, "fold the shard/checkpoint files given as arguments into the full-suite result and print it")
	format := flag.String("format", "table", "output format: table | json | csv")
	quiet := flag.Bool("quiet", false, "suppress the progress meter and cache statistics on stderr")
	noFitCache := flag.Bool("no-fit-cache", false, "refit Ẑ inside every scenario instead of once per suite (diagnostic; output is identical)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	stopProfiles, err := profiling.Start(*cpuprofile, *memprofile)
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProfiles(); perr != nil && retErr == nil {
			retErr = perr
		}
	}()

	switch {
	case *list:
		for _, s := range fleet.Builtin() {
			fmt.Printf("%-13s %4d scenarios, %3d cells  %s\n",
				s.Name, s.NumScenarios(), s.NumCells(), s.Description)
		}
		return nil
	case *listStrategies:
		for _, name := range strategies.Names() {
			s, ok := strategies.Lookup(name)
			if !ok {
				continue
			}
			fmt.Printf("%-18s %s\n", name, s.Describe())
		}
		return nil
	case *merge:
		return runMerge(flag.Args(), *format)
	}
	if flag.NArg() > 0 {
		return fmt.Errorf("unexpected arguments %v (shard files are only accepted with -merge)", flag.Args())
	}

	var suite fleet.Suite
	if *suiteFile != "" {
		if *dumpSuite != "" {
			return fmt.Errorf("-dump-suite names a built-in suite and conflicts with -suite-file")
		}
		suite, err = fleet.LoadSuiteFile(*suiteFile)
	} else {
		name := *suiteName
		if *dumpSuite != "" {
			name = *dumpSuite
		}
		suite, err = fleet.Lookup(name)
	}
	if err != nil {
		return err
	}
	if *seed != 0 {
		suite.Seed = *seed
	}
	if *steps != 0 {
		suite.Steps = *steps
	}
	if *seedsPerCell != 0 {
		suite.SeedsPerCell = *seedsPerCell
	}
	if *fitSamples != 0 {
		suite.FitSamples = *fitSamples
	}
	if *learnedWorkers != 0 {
		if *learnedWorkers < 0 {
			return fmt.Errorf("-learned-workers %d: must be >= 0", *learnedWorkers)
		}
		// A throughput knob only: it is excluded from the suite fingerprint,
		// so checkpoints and shards taken at other values stay compatible.
		lc := fleet.LearnedConfig{}
		if suite.Learned != nil {
			lc = *suite.Learned
		}
		lc.Workers = *learnedWorkers
		suite.Learned = &lc
	}

	if *dumpSuite != "" {
		data, err := fleet.DumpSuite(suite)
		if err != nil {
			return err
		}
		_, err = os.Stdout.Write(data)
		return err
	}

	var shard fleet.Shard
	if *shardSpec != "" {
		if shard, err = fleet.ParseShard(*shardSpec); err != nil {
			return err
		}
		if !shard.IsWhole() && *checkpoint == "" {
			return fmt.Errorf("-shard %s needs -checkpoint to keep the shard's records for -merge", shard)
		}
	}
	if *resume && *checkpoint == "" {
		return fmt.Errorf("-resume needs -checkpoint")
	}

	cache := fleet.NewStrategyCache()
	cfg := fleet.Config{Workers: *workers, Cache: cache, Shard: shard, NoFitCache: *noFitCache}
	if !*quiet {
		cfg.Progress = func(done, total int) {
			if done%10 == 0 || done == total {
				fmt.Fprintf(os.Stderr, "\r%d/%d scenarios", done, total)
				if done == total {
					fmt.Fprintln(os.Stderr)
				}
			}
		}
	}

	// Wire the checkpoint: on resume, reload prior records and append;
	// otherwise start a fresh file.
	var writer *fleet.CheckpointWriter
	if *checkpoint != "" {
		if *resume {
			ck, err := fleet.ReadCheckpoint(*checkpoint)
			if err != nil {
				return err
			}
			if got, want := ck.Suite.Fingerprint(), suite.Fingerprint(); got != want {
				return fmt.Errorf("checkpoint %s was written by a different suite (fingerprint %s, this run %s); "+
					"re-check the suite file and overrides", *checkpoint, got, want)
			}
			if ck.Shard.String() != shard.String() {
				return fmt.Errorf("checkpoint %s covers shard %s, this run is shard %s",
					*checkpoint, ck.Shard, shard)
			}
			cfg.Completed = ck.Records
			if !*quiet {
				fmt.Fprintf(os.Stderr, "resuming: %d scenarios already complete\n", len(ck.Records))
			}
			writer, err = fleet.AppendCheckpoint(*checkpoint, ck)
		} else {
			writer, err = fleet.CreateCheckpoint(*checkpoint, suite, shard)
		}
		if err != nil {
			return err
		}
		defer func() {
			if writer != nil {
				writer.Close()
			}
		}()
		cfg.OnRecord = writer.Append
	}

	// Ctrl-C / SIGTERM cancels the context: the worker pool drains
	// promptly and any -checkpoint file keeps the completed index-ordered
	// prefix, so an interrupted run restarts with -resume. After the first
	// signal the handler is released, so a second Ctrl-C force-kills.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	go func() {
		<-ctx.Done()
		stopSignals()
	}()

	res, err := fleet.Run(ctx, suite, cfg)
	if err != nil {
		if errors.Is(err, context.Canceled) && *checkpoint != "" {
			fmt.Fprintf(os.Stderr, "interrupted: %s keeps the completed prefix; rerun with -resume\n", *checkpoint)
		}
		return err
	}
	if writer != nil {
		if err := writer.Close(); err != nil {
			return err
		}
		writer = nil
	}
	if !*quiet {
		stats := cache.Stats()
		fmt.Fprintf(os.Stderr, "strategy cache: %d policies built (%d recovery + %d replication solves + %d fits), %d hits\n",
			stats.PolicyBuilds, stats.RecoverySolves, stats.ReplicationSolves, stats.FitSolves,
			stats.PolicyHits+stats.RecoveryHits+stats.ReplicationHits+stats.FitHits)
	}
	return writeResult(os.Stdout, res, *format)
}

// runMerge folds a complete shard set back into the single-machine result.
func runMerge(paths []string, format string) error {
	suite, records, err := fleet.ReadShardSet(paths)
	if err != nil {
		return err
	}
	res, err := fleet.MergeRecords(suite, records)
	if err != nil {
		return err
	}
	return writeResult(os.Stdout, res, format)
}

func writeResult(w io.Writer, res *fleet.Result, format string) error {
	switch format {
	case "json":
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(res)
	case "csv":
		return writeCSV(w, res)
	case "table":
		writeTable(w, res)
		return nil
	default:
		return fmt.Errorf("unknown format %q", format)
	}
}

func writeCSV(f io.Writer, res *fleet.Result) error {
	w := csv.NewWriter(f)
	header := []string{
		"suite", "cell", "policy", "pa", "pc1", "pc2", "pu", "eta",
		"lambda", "service", "n1", "smax", "deltaR", "f", "runs",
		"availability", "availability_ci", "quorum", "quorum_ci",
		"ttr", "ttr_ci", "fr", "fr_ci",
		"avg_nodes", "avg_nodes_ci", "avg_cost", "avg_cost_ci",
	}
	if err := w.Write(header); err != nil {
		return err
	}
	ff := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	fi := func(v int) string { return strconv.Itoa(v) }
	for _, c := range res.Cells {
		a := c.Aggregate
		row := []string{
			res.Suite, fi(c.Cell.Index), string(c.Cell.Policy),
			ff(c.Cell.PA), ff(c.Cell.PC1), ff(c.Cell.PC2), ff(c.Cell.PU), ff(c.Cell.Eta),
			ff(c.Cell.Workload.Lambda), ff(c.Cell.Workload.MeanServiceSteps),
			fi(c.Cell.N1), fi(c.Cell.SMax), fi(c.Cell.DeltaR), fi(c.Cell.F),
			strconv.FormatInt(c.Runs, 10),
			ff(a.Availability.Mean), ff(a.Availability.CI),
			ff(a.QuorumAvailability.Mean), ff(a.QuorumAvailability.CI),
			ff(a.TimeToRecovery.Mean), ff(a.TimeToRecovery.CI),
			ff(a.RecoveryFrequency.Mean), ff(a.RecoveryFrequency.CI),
			ff(a.AvgNodes.Mean), ff(a.AvgNodes.CI),
			ff(a.Cost.Mean), ff(a.Cost.CI),
		}
		if err := w.Write(row); err != nil {
			return err
		}
	}
	w.Flush()
	return w.Error()
}

func writeTable(w io.Writer, res *fleet.Result) {
	fmt.Fprintf(w, "suite %s (seed %d): %d scenarios over %d cells\n\n",
		res.Suite, res.Seed, res.Scenarios, len(res.Cells))
	fmt.Fprintf(w, "%4s  %-18s %5s %5s %3s %4s %5s  %8s %10s %9s %8s %7s %7s\n",
		"cell", "policy", "pA", "pC1", "N1", "ΔR", "runs", "T(A)", "T(A,quor)", "T(R)", "F(R)", "avg N", "cost")
	for _, c := range res.Cells {
		a := c.Aggregate
		fmt.Fprintf(w, "%4d  %-18s %5.3g %5.3g %3d %4d %5d  %8.3f %10.3f %9.2f %8.4f %7.2f %7.3f\n",
			c.Cell.Index, c.Cell.Policy, c.Cell.PA, c.Cell.PC1, c.Cell.N1, c.Cell.DeltaR, c.Runs,
			a.Availability.Mean, a.QuorumAvailability.Mean,
			a.TimeToRecovery.Mean, a.RecoveryFrequency.Mean,
			a.AvgNodes.Mean, a.Cost.Mean)
	}
}
