// tolerance-fleet runs a built-in scenario suite on the parallel fleet
// engine: the suite grid expands to hundreds of emulation scenarios,
// executes on a bounded worker pool with deterministic per-scenario seeding,
// and streams per-cell T(A), T(R), F(R), node-count and cost summaries.
//
//	tolerance-fleet -list
//	tolerance-fleet -suite paper-grid -workers 8
//	tolerance-fleet -suite scada-sweep -format csv > scada.csv
//	tolerance-fleet -suite smoke -format json
//
// Output is deterministic: the same suite and seed produce byte-identical
// results for any -workers value.
package main

import (
	"context"
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"

	"tolerance/internal/fleet"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tolerance-fleet:", err)
		os.Exit(1)
	}
}

func run() error {
	suiteName := flag.String("suite", "paper-grid", "built-in suite to run (-list shows all)")
	list := flag.Bool("list", false, "list built-in suites and exit")
	workers := flag.Int("workers", 0, "worker pool size (0 = min(GOMAXPROCS, 8))")
	seed := flag.Int64("seed", 0, "override the suite master seed (0 = suite default)")
	steps := flag.Int("steps", 0, "override steps per scenario (0 = suite default)")
	seedsPerCell := flag.Int("seeds", 0, "override seeds per grid cell (0 = suite default)")
	fitSamples := flag.Int("fit", 0, "override Ẑ-estimation samples (0 = suite default)")
	format := flag.String("format", "table", "output format: table | json | csv")
	quiet := flag.Bool("quiet", false, "suppress the progress meter on stderr")
	flag.Parse()

	if *list {
		for _, s := range fleet.Builtin() {
			fmt.Printf("%-12s %4d scenarios, %3d cells  %s\n",
				s.Name, s.NumScenarios(), s.NumCells(), s.Description)
		}
		return nil
	}

	suite, err := fleet.Lookup(*suiteName)
	if err != nil {
		return err
	}
	if *seed != 0 {
		suite.Seed = *seed
	}
	if *steps != 0 {
		suite.Steps = *steps
	}
	if *seedsPerCell != 0 {
		suite.SeedsPerCell = *seedsPerCell
	}
	if *fitSamples != 0 {
		suite.FitSamples = *fitSamples
	}

	cfg := fleet.Config{Workers: *workers}
	if !*quiet {
		cfg.Progress = func(done, total int) {
			if done%10 == 0 || done == total {
				fmt.Fprintf(os.Stderr, "\r%d/%d scenarios", done, total)
				if done == total {
					fmt.Fprintln(os.Stderr)
				}
			}
		}
	}

	res, err := fleet.Run(context.Background(), suite, cfg)
	if err != nil {
		return err
	}

	switch *format {
	case "json":
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(res)
	case "csv":
		return writeCSV(os.Stdout, res)
	case "table":
		writeTable(res)
		return nil
	default:
		return fmt.Errorf("unknown format %q", *format)
	}
}

func writeCSV(f *os.File, res *fleet.Result) error {
	w := csv.NewWriter(f)
	header := []string{
		"suite", "cell", "policy", "pa", "pc1", "pc2", "pu", "eta",
		"lambda", "service", "n1", "smax", "deltaR", "f", "runs",
		"availability", "availability_ci", "quorum", "quorum_ci",
		"ttr", "ttr_ci", "fr", "fr_ci",
		"avg_nodes", "avg_nodes_ci", "avg_cost", "avg_cost_ci",
	}
	if err := w.Write(header); err != nil {
		return err
	}
	ff := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	fi := func(v int) string { return strconv.Itoa(v) }
	for _, c := range res.Cells {
		a := c.Aggregate
		row := []string{
			res.Suite, fi(c.Cell.Index), string(c.Cell.Policy),
			ff(c.Cell.PA), ff(c.Cell.PC1), ff(c.Cell.PC2), ff(c.Cell.PU), ff(c.Cell.Eta),
			ff(c.Cell.Workload.Lambda), ff(c.Cell.Workload.MeanServiceSteps),
			fi(c.Cell.N1), fi(c.Cell.SMax), fi(c.Cell.DeltaR), fi(c.Cell.F),
			strconv.FormatInt(c.Runs, 10),
			ff(a.Availability.Mean), ff(a.Availability.CI),
			ff(a.QuorumAvailability.Mean), ff(a.QuorumAvailability.CI),
			ff(a.TimeToRecovery.Mean), ff(a.TimeToRecovery.CI),
			ff(a.RecoveryFrequency.Mean), ff(a.RecoveryFrequency.CI),
			ff(a.AvgNodes.Mean), ff(a.AvgNodes.CI),
			ff(a.Cost.Mean), ff(a.Cost.CI),
		}
		if err := w.Write(row); err != nil {
			return err
		}
	}
	w.Flush()
	return w.Error()
}

func writeTable(res *fleet.Result) {
	fmt.Printf("suite %s (seed %d): %d scenarios over %d cells\n",
		res.Suite, res.Seed, res.Scenarios, len(res.Cells))
	fmt.Printf("strategy cache: %d recovery + %d replication solves, %d hits\n\n",
		res.Cache.RecoverySolves, res.Cache.ReplicationSolves,
		res.Cache.RecoveryHits+res.Cache.ReplicationHits)
	fmt.Printf("%4s  %-18s %5s %5s %3s %4s  %8s %10s %9s %8s %7s %7s\n",
		"cell", "policy", "pA", "pC1", "N1", "ΔR", "T(A)", "T(A,quor)", "T(R)", "F(R)", "avg N", "cost")
	for _, c := range res.Cells {
		a := c.Aggregate
		fmt.Printf("%4d  %-18s %5.3g %5.3g %3d %4d  %8.3f %10.3f %9.2f %8.4f %7.2f %7.3f\n",
			c.Cell.Index, c.Cell.Policy, c.Cell.PA, c.Cell.PC1, c.Cell.N1, c.Cell.DeltaR,
			a.Availability.Mean, a.QuorumAvailability.Mean,
			a.TimeToRecovery.Mean, a.RecoveryFrequency.Mean,
			a.AvgNodes.Mean, a.Cost.Mean)
	}
}
