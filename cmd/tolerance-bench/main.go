// tolerance-bench regenerates the paper's tables and figures as text output.
//
//	tolerance-bench                     # all experiments, default budgets
//	tolerance-bench -experiment fig6a   # one experiment
//	tolerance-bench -full               # larger budgets (slower)
//
// Experiment IDs: fig4 fig5 fig6a fig6b table2 fig9 fig11 fig13 fig14 fig15
// fig16 fig18 table7.
//
// -metrics-addr serves the HTTP introspection endpoint (/metrics,
// /debug/vars, /debug/pprof/*) while experiments run — handy for profiling
// a long -full regeneration. Telemetry never writes to stdout.
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"tolerance"
	"tolerance/internal/cmdp"
	"tolerance/internal/emulation"
	"tolerance/internal/ids"
	"tolerance/internal/nodemodel"
	"tolerance/internal/opt"
	"tolerance/internal/pomdp"
	"tolerance/internal/profiling"
	"tolerance/internal/recovery"
	"tolerance/internal/telemetry"
)

func main() {
	experiment := flag.String("experiment", "all", "experiment id or 'all'")
	full := flag.Bool("full", false, "use larger budgets")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address (e.g. :8417; empty = off)")
	flag.Parse()
	if *metricsAddr != "" {
		srv, err := telemetry.Serve(*metricsAddr, telemetry.New())
		if err != nil {
			fmt.Fprintln(os.Stderr, "tolerance-bench:", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "telemetry: serving http://%s/metrics\n", srv.Addr())
	}
	stopProfiles, err := profiling.Start(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tolerance-bench:", err)
		os.Exit(1)
	}
	runErr := run(*experiment, *full)
	if err := stopProfiles(); err != nil && runErr == nil {
		runErr = err
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "tolerance-bench:", runErr)
		os.Exit(1)
	}
}

type experimentFn func(full bool) error

func run(which string, full bool) error {
	experiments := []struct {
		id string
		fn experimentFn
	}{
		{"fig4", fig4}, {"fig5", fig5}, {"fig6a", fig6a}, {"fig6b", fig6b},
		{"table2", table2}, {"fig9", fig9}, {"fig11", fig11},
		{"fig13", fig13}, {"fig14", fig14}, {"fig15", fig15},
		{"fig16", fig16}, {"fig18", fig18}, {"table7", table7},
	}
	ran := false
	for _, e := range experiments {
		if which != "all" && which != e.id {
			continue
		}
		ran = true
		fmt.Printf("==== %s ====\n", e.id)
		start := time.Now()
		if err := e.fn(full); err != nil {
			return fmt.Errorf("%s: %w", e.id, err)
		}
		fmt.Printf("(%s in %v)\n\n", e.id, time.Since(start).Round(time.Millisecond))
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q", which)
	}
	return nil
}

func fig4(bool) error {
	params := nodemodel.DefaultParams()
	params.PA = 0.01
	model, err := params.POMDP()
	if err != nil {
		return err
	}
	ip := &pomdp.IncrementalPruning{MaxVectors: 32}
	stages, err := ip.SolveFiniteHorizon(model, 4)
	if err != nil {
		return err
	}
	vectors := stages[4]
	fmt.Printf("alpha vectors (%d) of V*_{t=4}; V*(b) over b = P[compromised]:\n", len(vectors))
	for b := 0.0; b <= 1.0001; b += 0.1 {
		belief := []float64{1 - b, b, 0}
		v, a := pomdp.ValueAt(vectors, belief)
		act := "W"
		if a == 1 {
			act = "R"
		}
		fmt.Printf("  b=%.1f  V*=%.4f  action=%s\n", b, v, act)
	}
	return nil
}

func fig5(bool) error {
	fmt.Println("P[compromised or crashed by t], no recoveries:")
	fmt.Printf("%6s", "t")
	pas := []float64{0.1, 0.05, 0.025, 0.01}
	for _, pa := range pas {
		fmt.Printf("  pA=%.3f", pa)
	}
	fmt.Println()
	curves := make([][]float64, len(pas))
	for i, pa := range pas {
		p := nodemodel.DefaultParams()
		p.PA = pa
		p.PU = 0
		curves[i] = p.FailureProbByTime(100)
	}
	for _, t := range []int{10, 20, 30, 40, 50, 70, 100} {
		fmt.Printf("%6d", t)
		for i := range pas {
			fmt.Printf("  %8.3f", curves[i][t])
		}
		fmt.Println()
	}
	return nil
}

func fig6a(bool) error {
	fmt.Println("MTTF E[T(f)] vs N1 (f=3, k=1):")
	fmt.Printf("%6s %12s %12s %12s\n", "N1", "pA=0.1", "pA=0.025", "pA=0.01")
	for _, n1 := range []int{10, 20, 30, 40, 60, 80, 100} {
		fmt.Printf("%6d", n1)
		for _, pa := range []float64{0.1, 0.025, 0.01} {
			q := (1 - pa) * (1 - 1e-5)
			mttf, err := tolerance.MTTF(n1, 3, 1, q)
			if err != nil {
				return err
			}
			fmt.Printf(" %12.1f", mttf)
		}
		fmt.Println()
	}
	return nil
}

func fig6b(bool) error {
	fmt.Println("reliability R(t) (f=3, k=1, pA=0.05):")
	q := (1 - 0.05) * (1 - 1e-5)
	ns := []int{25, 50, 100, 200}
	curves := map[int][]float64{}
	for _, n1 := range ns {
		r, err := tolerance.Reliability(n1, 3, 1, 100, q)
		if err != nil {
			return err
		}
		curves[n1] = r
	}
	fmt.Printf("%6s %8s %8s %8s %8s\n", "t", "N1=25", "N1=50", "N1=100", "N1=200")
	for _, t := range []int{10, 20, 40, 60, 80, 100} {
		fmt.Printf("%6d %8.3f %8.3f %8.3f %8.3f\n",
			t, curves[25][t], curves[50][t], curves[100][t], curves[200][t])
	}
	return nil
}

func table2(full bool) error {
	params := nodemodel.DefaultParams()
	budget := 200
	episodes := 30
	if full {
		budget, episodes = 1000, 50
	}
	deltas := []int{5, 15, 25, recovery.InfiniteDeltaR}
	fmt.Printf("%-8s", "method")
	for _, d := range deltas {
		if d == recovery.InfiniteDeltaR {
			fmt.Printf(" | %18s", "deltaR=inf")
		} else {
			fmt.Printf(" | %18s", fmt.Sprintf("deltaR=%d", d))
		}
	}
	fmt.Println()
	// Exact DP reference first.
	fmt.Printf("%-8s", "optimal")
	for _, d := range deltas {
		sol, err := recovery.SolveDP(params, recovery.DPConfig{DeltaR: d, GridSize: 300})
		if err != nil {
			return err
		}
		fmt.Printf(" | %11s %6.3f", "-", sol.AvgCost)
	}
	fmt.Println()
	optimizers := []opt.Optimizer{
		opt.CEM{Population: 30}, opt.DE{}, opt.BO{InitialSamples: 10}, opt.SPSA{},
	}
	for _, po := range optimizers {
		fmt.Printf("%-8s", po.Name())
		for _, d := range deltas {
			start := time.Now()
			res, err := recovery.Algorithm1(context.Background(), params, recovery.Algorithm1Config{
				DeltaR: d, Optimizer: po, Budget: budget,
				Episodes: episodes, Horizon: 150, Seed: 1,
			})
			if err != nil {
				return err
			}
			// Re-evaluate with fresh randomness for an unbiased cost.
			rng := rand.New(rand.NewSource(99))
			m, err := recovery.Evaluate(rng, params, res.Strategy, recovery.SimConfig{
				Episodes: 100, Horizon: 200, DeltaR: d,
			})
			if err != nil {
				return err
			}
			fmt.Printf(" | %10.1fs %6.3f", time.Since(start).Seconds(), m.AvgCost)
		}
		fmt.Println()
	}
	return nil
}

func fig9(full bool) error {
	fmt.Println("LP solve time for Problem 2 vs smax:")
	sizes := []int{4, 8, 16, 32, 64, 128, 256}
	if full {
		sizes = append(sizes, 512, 1024, 2048)
	}
	for _, smax := range sizes {
		model, err := cmdp.NewBinomialModel(smax, 3, 0.9, 0.95, 0)
		if err != nil {
			return err
		}
		start := time.Now()
		if _, err := cmdp.Solve(model); err != nil {
			return err
		}
		fmt.Printf("  smax=%5d: %v\n", smax, time.Since(start).Round(time.Millisecond))
	}
	return nil
}

func fig11(bool) error {
	catalog, err := emulation.Catalog()
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(1))
	fmt.Println("empirical Ẑ per container (M = 25,000): mean alerts H vs C, DKL:")
	for _, c := range catalog {
		fit, err := ids.Fit(rng, c.Profile, 25000)
		if err != nil {
			return err
		}
		fmt.Printf("  %-34s  E[O|H]=%5.1f  E[O|C]=%5.1f  DKL=%.3f\n",
			c.Profile.Name, fit.Healthy.Mean(), fit.Compromised.Mean(), c.Profile.Divergence())
	}
	return nil
}

func fig13(bool) error {
	ctx := context.Background()
	repSol, err := tolerance.Solve(ctx, tolerance.ReplicationProblem{SMax: 13, F: 1, EpsilonA: 0.9, Q: 0.97})
	if err != nil {
		return err
	}
	fmt.Println("replication strategy pi(add|s):")
	for s, p := range repSol.Replication.AddProbability {
		fmt.Printf("  s=%2d: %.3f\n", s, p)
	}
	recSol, err := tolerance.Solve(ctx, tolerance.RecoveryProblem{
		Model: tolerance.DefaultNodeModel(), DeltaR: tolerance.InfiniteDeltaR,
	})
	if err != nil {
		return err
	}
	rec := recSol.Recovery
	fmt.Printf("recovery threshold alpha* = %.3f (J* = %.4f)\n", rec.Thresholds[0], rec.ExpectedCost)
	return nil
}

func fig14(bool) error {
	fmt.Println("optimal cost J* vs detector quality DKL(Z_H || Z_C):")
	pts, err := tolerance.DetectorSensitivity(tolerance.DefaultNodeModel(),
		[]float64{0.25, 0.4, 0.55, 0.7, 0.85, 1.0})
	if err != nil {
		return err
	}
	for _, p := range pts {
		fmt.Printf("  DKL=%.3f  J*=%.4f\n", p[0], p[1])
	}
	return nil
}

func fig15(bool) error {
	params := nodemodel.DefaultParams()
	sol, err := recovery.SolveDP(params, recovery.DPConfig{DeltaR: 100, GridSize: 300})
	if err != nil {
		return err
	}
	fmt.Println("threshold curve alpha*_t within a Delta_R = 100 window:")
	for _, k := range []int{1, 20, 40, 60, 80, 90, 95, 99} {
		fmt.Printf("  t=%3d: alpha* = %.3f\n", k, sol.Thresholds[k-1])
	}
	return nil
}

func fig16(bool) error {
	model, err := cmdp.NewBinomialModel(20, 3, 0.9, 0.9, 0)
	if err != nil {
		return err
	}
	fmt.Println("fS(s' | s, a=0) rows (binomial survival model, q=0.9):")
	for _, s := range []int{0, 10, 20} {
		fmt.Printf("  s=%2d:", s)
		for s2 := 0; s2 <= 20; s2 += 2 {
			fmt.Printf(" %5.3f", model.FS[0][s][s2])
		}
		fmt.Println()
	}
	return nil
}

func fig18(bool) error {
	rng := rand.New(rand.NewSource(2))
	ranks, err := ids.RankMetrics(rng, ids.DefaultMetricProfiles(), 25000)
	if err != nil {
		return err
	}
	fmt.Println("metric ranking by empirical KL divergence:")
	for _, r := range ranks {
		fmt.Printf("  %-32s %8.4f\n", r.Metric, r.Divergence)
	}
	return nil
}

func table7(full bool) error {
	steps := 600
	numSeeds := 5
	if full {
		steps, numSeeds = 1000, 20
	}
	seeds := make([]int64, numSeeds)
	for i := range seeds {
		seeds[i] = int64(i + 1)
	}
	for _, n1 := range []int{3, 6, 9} {
		for _, deltaR := range []int{15, 25, recovery.InfiniteDeltaR} {
			label := fmt.Sprintf("%d", deltaR)
			if deltaR == recovery.InfiniteDeltaR {
				label = "inf"
			}
			fmt.Printf("N1=%d deltaR=%s:\n", n1, label)
			rows, err := tolerance.Compare(tolerance.CompareConfig{
				N1: n1, DeltaR: deltaR, Steps: steps, Seeds: seeds,
			})
			if err != nil {
				return err
			}
			fmt.Printf("  %-18s %8s %12s %10s\n", "strategy", "T(A)", "T(R)", "F(R)")
			for _, r := range rows {
				fmt.Printf("  %-18s %4.2f±%.2f %7.1f±%5.1f %5.3f±%.3f\n",
					r.Strategy, r.Availability, r.AvailabilityCI,
					r.TimeToRecovery, r.TimeToRecoveryCI,
					r.RecoveryFrequency, r.RecoveryFreqCI)
			}
		}
	}
	return nil
}
