// tolerance-sim runs one emulated testbed scenario (§VIII-A) and prints the
// evaluation metrics. The policy is any registered strategy kind, so the
// exact strategies, the baselines and the learned kinds all run through the
// same flag:
//
//	tolerance-sim -n1 6 -deltar 15 -steps 1000 -policy TOLERANCE
//	tolerance-sim -n1 3 -policy NO-RECOVERY -seeds 20
//	tolerance-sim -n1 6 -policy learned:cem
//
// -metrics-addr serves live telemetry (training progress for learned
// policies) over HTTP: /metrics, /debug/vars and /debug/pprof/*. Telemetry
// never writes to stdout and never changes the printed metrics.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"tolerance/internal/emulation"
	"tolerance/internal/fleet"
	"tolerance/internal/nodemodel"
	"tolerance/internal/strategies"
	"tolerance/internal/telemetry"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tolerance-sim:", err)
		os.Exit(1)
	}
}

// legacyNames maps the pre-registry policy flag values to strategy names.
var legacyNames = map[string]string{
	"tolerance":         "TOLERANCE",
	"no-recovery":       "NO-RECOVERY",
	"periodic":          "PERIODIC",
	"periodic-adaptive": "PERIODIC-ADAPTIVE",
}

func run() error {
	n1 := flag.Int("n1", 6, "initial number of nodes")
	deltaR := flag.Int("deltar", 15, "BTR bound (0 = infinity)")
	steps := flag.Int("steps", 1000, "time steps per run")
	seeds := flag.Int("seeds", 5, "number of evaluation seeds")
	policyName := flag.String("policy", "TOLERANCE",
		"strategy kind (any registered strategy; see tolerance-fleet -list-strategies)")
	pa := flag.Float64("pa", 0.1, "per-step compromise probability")
	epsa := flag.Float64("epsa", 0.9, "availability bound for replication")
	trainSeed := flag.Int64("train-seed", 1, "training seed for learned policies")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address (e.g. :8417; empty = off)")
	flag.Parse()

	col := telemetry.New()
	if *metricsAddr != "" {
		srv, err := telemetry.Serve(*metricsAddr, col)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "telemetry: serving http://%s/metrics\n", srv.Addr())
	}

	// First Ctrl-C cancels learned-policy training; releasing the handler
	// lets a second Ctrl-C force-kill.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		stop()
	}()

	params := nodemodel.DefaultParams()
	params.PA = *pa

	f := emulation.DefaultThreshold(*n1)
	smax := 13

	name := *policyName
	if canonical, ok := legacyNames[strings.ToLower(name)]; ok {
		name = canonical
	}
	strat, ok := strategies.Lookup(name)
	if !ok {
		return fmt.Errorf("unknown policy %q (known: %s)",
			name, strings.Join(strategies.Names(), ", "))
	}
	policy, err := strat.Policy(ctx, strategies.Spec{
		Params:    params,
		N1:        *n1,
		SMax:      smax,
		F:         f,
		K:         1,
		DeltaR:    *deltaR,
		EpsilonA:  *epsa,
		Seed:      *trainSeed,
		Telemetry: telemetry.NewTraining(col),
	}, fleet.NewStrategyCache())
	if err != nil {
		return err
	}

	seedList := make([]int64, *seeds)
	for i := range seedList {
		seedList[i] = int64(i + 1)
	}
	agg, err := emulation.RunSeeds(emulation.Scenario{
		N1:     *n1,
		SMax:   smax,
		F:      f,
		DeltaR: *deltaR,
		Steps:  *steps,
		Params: params,
		Policy: policy,
	}, seedList)
	if err != nil {
		return err
	}
	fmt.Printf("policy=%s N1=%d f=%d deltaR=%d steps=%d seeds=%d\n",
		policy.Name(), *n1, f, *deltaR, *steps, *seeds)
	fmt.Printf("T(A) = %.3f ± %.3f\n", agg.Availability.Mean, agg.Availability.CI)
	fmt.Printf("T(R) = %.2f ± %.2f\n", agg.TimeToRecovery.Mean, agg.TimeToRecovery.CI)
	fmt.Printf("F(R) = %.4f ± %.4f\n", agg.RecoveryFrequency.Mean, agg.RecoveryFrequency.CI)
	fmt.Printf("avg nodes = %.2f\n", agg.AvgNodes.Mean)
	return nil
}
