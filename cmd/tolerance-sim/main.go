// tolerance-sim runs one emulated testbed scenario (§VIII-A) and prints the
// evaluation metrics.
//
//	tolerance-sim -n1 6 -deltar 15 -steps 1000 -policy tolerance
//	tolerance-sim -n1 3 -policy no-recovery -seeds 20
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"tolerance/internal/baselines"
	"tolerance/internal/cmdp"
	"tolerance/internal/emulation"
	"tolerance/internal/nodemodel"
	"tolerance/internal/recovery"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tolerance-sim:", err)
		os.Exit(1)
	}
}

func run() error {
	n1 := flag.Int("n1", 6, "initial number of nodes")
	deltaR := flag.Int("deltar", 15, "BTR bound (0 = infinity)")
	steps := flag.Int("steps", 1000, "time steps per run")
	seeds := flag.Int("seeds", 5, "number of evaluation seeds")
	policyName := flag.String("policy", "tolerance",
		"tolerance | no-recovery | periodic | periodic-adaptive")
	pa := flag.Float64("pa", 0.1, "per-step compromise probability")
	epsa := flag.Float64("epsa", 0.9, "availability bound for replication")
	flag.Parse()

	params := nodemodel.DefaultParams()
	params.PA = *pa

	f := (*n1 - 1) / 2
	if f > 2 {
		f = 2
	}
	if f < 1 {
		f = 1
	}

	var policy baselines.Policy
	switch *policyName {
	case "tolerance":
		dp, err := recovery.SolveDP(params, recovery.DPConfig{DeltaR: *deltaR})
		if err != nil {
			return err
		}
		rng := rand.New(rand.NewSource(17))
		q, err := cmdp.EstimateHealthyProb(rng, params, dp.Strategy(*deltaR),
			cmdp.DefaultEstimateEpisodes, cmdp.DefaultEstimateHorizon, *deltaR)
		if err != nil {
			return err
		}
		model, err := cmdp.NewBinomialModel(13, f, *epsa, q, 0)
		if err != nil {
			return err
		}
		sol, err := cmdp.Solve(model)
		if err != nil {
			return err
		}
		policy, err = baselines.NewTolerance(dp.Strategy(*deltaR), sol)
		if err != nil {
			return err
		}
	case "no-recovery":
		policy = baselines.NoRecovery{}
	case "periodic":
		policy = baselines.Periodic{}
	case "periodic-adaptive":
		policy = baselines.PeriodicAdaptive{TargetN: *n1}
	default:
		return fmt.Errorf("unknown policy %q", *policyName)
	}

	seedList := make([]int64, *seeds)
	for i := range seedList {
		seedList[i] = int64(i + 1)
	}
	agg, err := emulation.RunSeeds(emulation.Scenario{
		N1:     *n1,
		F:      f,
		DeltaR: *deltaR,
		Steps:  *steps,
		Params: params,
		Policy: policy,
	}, seedList)
	if err != nil {
		return err
	}
	fmt.Printf("policy=%s N1=%d f=%d deltaR=%d steps=%d seeds=%d\n",
		policy.Name(), *n1, f, *deltaR, *steps, *seeds)
	fmt.Printf("T(A) = %.3f ± %.3f\n", agg.Availability.Mean, agg.Availability.CI)
	fmt.Printf("T(R) = %.2f ± %.2f\n", agg.TimeToRecovery.Mean, agg.TimeToRecovery.CI)
	fmt.Printf("F(R) = %.4f ± %.4f\n", agg.RecoveryFrequency.Mean, agg.RecoveryFrequency.CI)
	fmt.Printf("avg nodes = %.2f\n", agg.AvgNodes.Mean)
	return nil
}
