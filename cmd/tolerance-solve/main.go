// tolerance-solve computes the two optimal control strategies of the paper
// from command-line parameters, through the unified Solve facade.
//
//	tolerance-solve -problem recovery -pa 0.1 -eta 2 -deltar 15
//	tolerance-solve -problem recovery -method cem -budget 500
//	tolerance-solve -problem recovery -method ppo -budget 20
//	tolerance-solve -problem replication -smax 13 -f 2 -epsa 0.9 -q 0.95
//
// -metrics-addr serves live training telemetry (optimizer evaluations,
// best objective so far, PPO iteration costs) over HTTP while a learned
// solve runs: /metrics (JSON), /debug/vars (expvar) and /debug/pprof/*.
// Telemetry never writes to stdout and never changes the solve result.
//
// Ctrl-C cancels an in-flight solve.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"tolerance"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tolerance-solve:", err)
		os.Exit(1)
	}
}

func run() error {
	problem := flag.String("problem", "recovery", "recovery | replication")
	pa := flag.Float64("pa", 0.1, "per-step compromise probability pA")
	pc1 := flag.Float64("pc1", 1e-5, "healthy crash probability pC1")
	pc2 := flag.Float64("pc2", 1e-3, "compromised crash probability pC2")
	pu := flag.Float64("pu", 0.02, "software update probability pU")
	eta := flag.Float64("eta", 2, "cost weight eta")
	deltaR := flag.Int("deltar", 0, "BTR bound Delta_R (0 = infinity)")
	method := flag.String("method", "dp", "dp | cem | de | bo | spsa | random | ppo")
	budget := flag.Int("budget", 0, "training budget: Alg 1 evaluations (default 400) or PPO iterations (default 30); 0 = method default")
	seed := flag.Int64("seed", 1, "random seed")
	smax := flag.Int("smax", 13, "maximum system size (Problem 2)")
	f := flag.Int("f", 2, "tolerance threshold (Problem 2)")
	epsa := flag.Float64("epsa", 0.9, "availability bound epsilon_A (Problem 2)")
	q := flag.Float64("q", 0.95, "per-step node health probability (Problem 2)")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address (e.g. :8417; empty = off)")
	flag.Parse()

	tel := tolerance.NewTelemetry()
	if *metricsAddr != "" {
		addr, closeSrv, err := tel.Serve(*metricsAddr)
		if err != nil {
			return err
		}
		defer closeSrv()
		fmt.Fprintf(os.Stderr, "telemetry: serving http://%s/metrics\n", addr)
	}

	// First Ctrl-C cancels the solve (honored between training stages and
	// objective evaluations); releasing the handler lets a second Ctrl-C
	// force-kill.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		stop()
	}()

	switch *problem {
	case "recovery":
		model := tolerance.NodeModel{PA: *pa, PC1: *pc1, PC2: *pc2, PU: *pu, Eta: *eta}
		sol, err := tolerance.Solve(ctx, tolerance.RecoveryProblem{Model: model, DeltaR: *deltaR},
			tolerance.WithMethod(*method), tolerance.WithBudget(*budget), tolerance.WithSeed(*seed),
			tolerance.WithTelemetry(tel))
		if err != nil {
			return err
		}
		s := sol.Recovery
		fmt.Printf("problem 1 (optimal intrusion recovery), method=%s\n", sol.Method)
		fmt.Printf("expected cost J = %.4f\n", s.ExpectedCost)
		if len(s.Thresholds) == 0 {
			fmt.Printf("(non-threshold policy: decisions via ShouldRecover)\n")
			return nil
		}
		fmt.Printf("thresholds (per BTR window position):\n")
		for k, th := range s.Thresholds {
			fmt.Printf("  alpha*_%d = %.4f\n", k+1, th)
		}
	case "replication":
		sol, err := tolerance.Solve(ctx, tolerance.ReplicationProblem{
			SMax: *smax, F: *f, EpsilonA: *epsa, Q: *q,
		})
		if err != nil {
			return err
		}
		s := sol.Replication
		fmt.Printf("problem 2 (optimal replication factor)\n")
		fmt.Printf("expected nodes J = %.3f, availability = %.4f\n", s.ExpectedNodes, s.Availability)
		fmt.Printf("pi(add | s):\n")
		for state, p := range s.AddProbability {
			fmt.Printf("  s=%2d: %.4f\n", state, p)
		}
	default:
		return fmt.Errorf("unknown problem %q", *problem)
	}
	return nil
}
