package tolerance_test

import (
	"context"
	"fmt"

	"tolerance"
)

// ExampleSolve solves Problem 1 exactly and applies the strategy.
func ExampleSolve() {
	sol, err := tolerance.Solve(context.Background(), tolerance.RecoveryProblem{
		Model:  tolerance.DefaultNodeModel(),
		DeltaR: tolerance.InfiniteDeltaR,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	rec := sol.Recovery
	fmt.Printf("method=%s thresholds=%d\n", sol.Method, len(rec.Thresholds))
	fmt.Printf("J* in (0,1): %v\n", rec.ExpectedCost > 0 && rec.ExpectedCost < 1)
	fmt.Printf("recovers above the threshold: %v\n", rec.ShouldRecover(rec.Thresholds[0]+0.01, 1))
	// Output:
	// method=dp thresholds=1
	// J* in (0,1): true
	// recovers above the threshold: true
}

// ExampleSolve_replication solves Problem 2 with Algorithm 2's LP.
func ExampleSolve_replication() {
	sol, err := tolerance.Solve(context.Background(), tolerance.ReplicationProblem{
		SMax: 13, F: 1, EpsilonA: 0.9, Q: 0.95,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	rep := sol.Replication
	fmt.Printf("states=%d\n", len(rep.AddProbability))
	fmt.Printf("meets the availability bound: %v\n", rep.Availability >= 0.9-1e-6)
	// Output:
	// states=14
	// meets the availability bound: true
}

// ExampleRunSuite runs a built-in suite and streams its records.
func ExampleRunSuite() {
	streamed := 0
	report, err := tolerance.RunSuite(context.Background(),
		tolerance.SuiteByName("smoke"),
		tolerance.WithWorkers(4),
		tolerance.WithRecordHandler(func(rec tolerance.ScenarioRecord) error {
			streamed++
			return nil
		}),
	)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("%s: %d scenarios over %d cells, %d records streamed\n",
		report.Suite, report.Scenarios, len(report.Cells), streamed)
	// Output:
	// smoke: 4 scenarios over 2 cells, 4 records streamed
}

// ExampleStrategies shows that exact, baseline and learned strategies are
// all registered policy kinds.
func ExampleStrategies() {
	registered := map[string]bool{}
	for _, s := range tolerance.Strategies() {
		registered[s.Name] = true
	}
	for _, name := range []string{"TOLERANCE", "NO-RECOVERY", "learned:cem", "learned:ppo"} {
		fmt.Printf("%s: %v\n", name, registered[name])
	}
	// Output:
	// TOLERANCE: true
	// NO-RECOVERY: true
	// learned:cem: true
	// learned:ppo: true
}

// alwaysRecover is a trivial custom strategy: recover whenever the belief
// is positive, never add nodes.
type alwaysRecover struct{}

func (alwaysRecover) Name() string     { return "example:always-recover" }
func (alwaysRecover) Describe() string { return "recovers every step (cost upper bound)" }

func (alwaysRecover) Fingerprint(tolerance.ScenarioSpec) string { return "static" }

func (alwaysRecover) Policy(context.Context, tolerance.ScenarioSpec) (tolerance.Policy, error) {
	return alwaysRecoverPolicy{}, nil
}

type alwaysRecoverPolicy struct{}

func (alwaysRecoverPolicy) Name() string                       { return "example:always-recover" }
func (alwaysRecoverPolicy) UsesBTR() bool                      { return true }
func (alwaysRecoverPolicy) Recover(tolerance.NodeState) bool   { return true }
func (alwaysRecoverPolicy) AddNode(tolerance.SystemState) bool { return false }

// ExampleRegisterStrategy registers a custom strategy and runs it through a
// JSON suite definition — custom names are policy kinds like any built-in.
func ExampleRegisterStrategy() {
	if err := tolerance.RegisterStrategy(alwaysRecover{}); err != nil {
		fmt.Println(err)
		return
	}
	suite := []byte(`{
		"version": 1,
		"name": "custom-demo",
		"seed": 1,
		"seedsPerCell": 1,
		"steps": 60,
		"fitSamples": 200,
		"attackRates": [0.1],
		"n1s": [3],
		"deltaRs": [15],
		"policies": ["example:always-recover"]
	}`)
	report, err := tolerance.RunSuite(context.Background(), tolerance.SuiteFromJSON(suite))
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("%s: %d scenario(s), strategy %s\n",
		report.Suite, report.Scenarios, report.Cells[0].Strategy)
	// Output:
	// custom-demo: 1 scenario(s), strategy example:always-recover
}
