package tolerance

import "fmt"

// Option tunes a v2 facade call (Solve, RunSuite, StreamSuite). Options are
// shared across entry points; each entry point documents which options it
// consumes and ignores the rest. Invalid option values surface as
// ErrBadInput from the entry point.
type Option func(*options)

// options collects every tunable; entry points validate the subset they
// consume.
type options struct {
	// Solve tunables.
	method string
	budget int

	// Suite tunables.
	workers      int
	seed         int64
	steps        int
	seedsPerCell int
	fitSamples   int
	shard        string
	noFitCache   bool
	progress     func(done, total int)
	records      []func(ScenarioRecord) error
	telemetry    *Telemetry
}

func collectOptions(opts []Option) options {
	var o options
	for _, opt := range opts {
		if opt != nil {
			opt(&o)
		}
	}
	return o
}

// WithMethod selects the solver for Solve's recovery problem: MethodDP
// (default, exact dynamic programming), an Algorithm 1 optimizer
// (OptimizerCEM, OptimizerDE, OptimizerBO, OptimizerSPSA, OptimizerRandom),
// or MethodPPO.
func WithMethod(method string) Option {
	return func(o *options) { o.method = method }
}

// WithBudget bounds the training effort of learned solve methods: objective
// evaluations for the Algorithm 1 optimizers, rollout/update iterations for
// PPO. Zero keeps the method default.
func WithBudget(n int) Option {
	return func(o *options) { o.budget = n }
}

// WithWorkers bounds the parallelism of a v2 call (default GOMAXPROCS):
// the fleet worker pool for RunSuite/StreamSuite, and the concurrent
// candidate/rollout evaluations of Solve's learned methods (the Algorithm 1
// optimizers and PPO). Results are bit-identical for any value — the knob
// trades wall-clock for cores, never output.
func WithWorkers(n int) Option {
	return func(o *options) { o.workers = n }
}

// WithSeed overrides the suite's master seed (RunSuite) or sets the
// training seed (Solve with a learned method). Zero keeps the default.
func WithSeed(seed int64) Option {
	return func(o *options) { o.seed = seed }
}

// WithSteps overrides the per-scenario step count when non-zero.
func WithSteps(n int) Option {
	return func(o *options) { o.steps = n }
}

// WithSeedsPerCell overrides the evaluation seeds per grid cell when
// non-zero.
func WithSeedsPerCell(n int) Option {
	return func(o *options) { o.seedsPerCell = n }
}

// WithFitSamples overrides the suite's Ẑ-estimation sample budget when
// non-zero.
func WithFitSamples(n int) Option {
	return func(o *options) { o.fitSamples = n }
}

// WithShard restricts a suite run to the deterministic slice i of n of the
// scenario index set, so a grid fans out across machines; merging the
// shards' records reproduces the unsharded output byte for byte.
func WithShard(i, n int) Option {
	return func(o *options) { o.shard = fmt.Sprintf("%d/%d", i, n) }
}

// WithoutFitCache disables the shared offline Ẑ fit: every scenario refits
// its observation models inline. Output is byte-identical either way; the
// switch exists for diagnostics.
func WithoutFitCache() Option {
	return func(o *options) { o.noFitCache = true }
}

// WithProgress installs a progress callback, called after each folded
// scenario with the number folded so far and the number scheduled.
func WithProgress(fn func(done, total int)) Option {
	return func(o *options) { o.progress = fn }
}

// WithRecordHandler subscribes a consumer to the per-scenario record
// stream: the handler receives every freshly executed scenario in fold
// (index) order, while the run is still in flight. A handler error aborts
// the run. Multiple handlers are called in registration order — checkpoint
// writers, live dashboards and StreamSuite are all consumers of this one
// stream.
func WithRecordHandler(fn func(ScenarioRecord) error) Option {
	return func(o *options) {
		if fn != nil {
			o.records = append(o.records, fn)
		}
	}
}
