package tolerance

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
)

// TestWithTelemetrySuiteInvariant: attaching telemetry to RunSuite must not
// change the report, and the snapshot must reconcile with it.
func TestWithTelemetrySuiteInvariant(t *testing.T) {
	ctx := context.Background()
	plain, err := RunSuite(ctx, SuiteByName("smoke"), WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	tel := NewTelemetry()
	instrumented, err := RunSuite(ctx, SuiteByName("smoke"), WithWorkers(4), WithTelemetry(tel))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, instrumented) {
		t.Errorf("telemetry changed the report:\nplain: %+v\ninstr: %+v", plain, instrumented)
	}
	s := tel.Snapshot()
	if got := s.Counters["fleet.scenarios_folded"]; got != int64(instrumented.Scenarios) {
		t.Errorf("fleet.scenarios_folded = %d, want %d", got, instrumented.Scenarios)
	}
	if got := s.Counters["cache.policy_builds"]; got < 1 {
		t.Errorf("cache.policy_builds = %d, want >= 1 (cache instrumented through the facade)", got)
	}
	if s.UptimeSeconds <= 0 {
		t.Errorf("uptime = %v, want > 0", s.UptimeSeconds)
	}
}

// TestWithTelemetrySolve: a learned solve reports training progress.
func TestWithTelemetrySolve(t *testing.T) {
	tel := NewTelemetry()
	_, err := Solve(context.Background(),
		RecoveryProblem{Model: DefaultNodeModel(), DeltaR: 15},
		WithMethod(OptimizerRandom), WithBudget(8), WithSeed(3), WithTelemetry(tel))
	if err != nil {
		t.Fatal(err)
	}
	s := tel.Snapshot()
	if got := s.Counters["training.evals"]; got < 8 {
		t.Errorf("training.evals = %d, want >= 8 (the budget)", got)
	}
	if _, ok := s.Gauges["training.best_objective"]; !ok {
		t.Error("training.best_objective gauge missing after a learned solve")
	}
}

// TestTelemetryHandlerServesSnapshot: the facade handler serves the JSON
// snapshot at /metrics in the public TelemetrySnapshot schema.
func TestTelemetryHandlerServesSnapshot(t *testing.T) {
	tel := NewTelemetry()
	if _, err := RunSuite(context.Background(), SuiteByName("smoke"),
		WithWorkers(2), WithTelemetry(tel)); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(tel.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap TelemetrySnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["fleet.scenarios_folded"] < 1 {
		t.Error("/metrics snapshot missing fleet.scenarios_folded")
	}
	if _, ok := snap.Histograms["fleet.scenario_duration_ns"]; !ok {
		t.Error("/metrics snapshot missing the scenario-duration histogram")
	}
}

// TestTelemetryServeLifecycle: Serve binds, answers, and shuts down.
func TestTelemetryServeLifecycle(t *testing.T) {
	tel := NewTelemetry()
	addr, closeSrv, err := tel.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/metrics status %d", resp.StatusCode)
	}
	if err := closeSrv(); err != nil {
		t.Fatal(err)
	}
}
