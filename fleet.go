package tolerance

import (
	"context"
	"errors"
	"fmt"
	"iter"

	"tolerance/internal/emulation"
	"tolerance/internal/fleet"
)

// SuiteRef names a scenario suite for RunSuite and StreamSuite: a built-in
// by name, a JSON suite-definition file on disk, or an in-memory JSON
// document (the schema that SuiteJSON exports).
type SuiteRef struct {
	name string
	path string
	data []byte
}

// SuiteByName references a built-in suite (SuiteNames lists them).
func SuiteByName(name string) SuiteRef { return SuiteRef{name: name} }

// SuiteFromFile references a JSON suite definition on disk.
func SuiteFromFile(path string) SuiteRef { return SuiteRef{path: path} }

// SuiteFromJSON references an in-memory JSON suite definition.
func SuiteFromJSON(data []byte) SuiteRef { return SuiteRef{data: data} }

// String describes the reference for error messages.
func (r SuiteRef) String() string {
	switch {
	case r.name != "":
		return "suite " + r.name
	case r.path != "":
		return "suite file " + r.path
	case len(r.data) > 0:
		return "inline suite"
	}
	return "empty suite reference"
}

// resolve loads the referenced suite.
func (r SuiteRef) resolve() (fleet.Suite, error) {
	switch {
	case r.name != "":
		return fleet.Lookup(r.name)
	case r.path != "":
		return fleet.LoadSuiteFile(r.path)
	case len(r.data) > 0:
		return fleet.ParseSuite(r.data)
	}
	return fleet.Suite{}, errors.New("empty suite reference")
}

// SuiteNames lists the built-in scenario suites.
func SuiteNames() []string {
	suites := fleet.Builtin()
	names := make([]string, len(suites))
	for i, s := range suites {
		names[i] = s.Name
	}
	return names
}

// SuiteJSON exports a suite as a versioned JSON document with every default
// made explicit — a complete, editable starting point for user-authored
// grids.
func SuiteJSON(ref SuiteRef) ([]byte, error) {
	suite, err := ref.resolve()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadInput, err)
	}
	return fleet.DumpSuite(suite)
}

// ScenarioMetrics is one emulation run's evaluation metrics (§III-C).
type ScenarioMetrics struct {
	// Availability is T(A); QuorumAvailability additionally requires a
	// full service quorum (Prop. 1).
	Availability       float64
	QuorumAvailability float64
	// TimeToRecovery is T(R) in steps; RecoveryFrequency is F(R).
	TimeToRecovery    float64
	RecoveryFrequency float64
	// AvgNodes is the mean replication factor; AvgCost the eq. (5) cost.
	AvgNodes float64
	AvgCost  float64
	// Intrusions, Recoveries, Evictions and Additions count events.
	Intrusions, Recoveries int
	Evictions, Additions   int
}

// ScenarioRecord is one executed scenario, streamed in fold (index) order
// while a suite run is in flight.
type ScenarioRecord struct {
	// Index is the scenario's position in suite expansion order; it also
	// derives the scenario's rng seed.
	Index int
	// Cell is the grid-cell index the scenario folds into.
	Cell int
	// Strategy is the cell's policy kind.
	Strategy string
	// Metrics holds the run's evaluation metrics.
	Metrics ScenarioMetrics
}

// publicMetrics converts the internal per-run metrics.
func publicMetrics(m emulation.Metrics) ScenarioMetrics {
	return ScenarioMetrics{
		Availability:       m.Availability,
		QuorumAvailability: m.QuorumAvailability,
		TimeToRecovery:     m.TimeToRecovery,
		RecoveryFrequency:  m.RecoveryFrequency,
		AvgNodes:           m.AvgNodes,
		AvgCost:            m.AvgCost,
		Intrusions:         m.Intrusions,
		Recoveries:         m.Recoveries,
		Evictions:          m.Evictions,
		Additions:          m.Additions,
	}
}

// RunSuite executes a scenario suite on a bounded worker pool and returns
// the aggregated report. Results are deterministic for a given (suite,
// seed) regardless of worker count or sharding.
//
// Cancelling ctx stops the worker pool promptly and returns the context's
// error; record handlers (WithRecordHandler) have by then received an
// index-ordered prefix of the run, so a checkpoint written from the stream
// is always valid for resumption. Validation failures wrap ErrBadInput.
func RunSuite(ctx context.Context, ref SuiteRef, opts ...Option) (*FleetReport, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	o := collectOptions(opts)
	suite, err := ref.resolve()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadInput, err)
	}
	if o.workers < 0 || o.steps < 0 || o.seedsPerCell < 0 || o.fitSamples < 0 {
		return nil, fmt.Errorf("%w: negative suite override", ErrBadInput)
	}
	if o.seed != 0 {
		suite.Seed = o.seed
	}
	if o.steps != 0 {
		suite.Steps = o.steps
	}
	if o.seedsPerCell != 0 {
		suite.SeedsPerCell = o.seedsPerCell
	}
	if o.fitSamples != 0 {
		suite.FitSamples = o.fitSamples
	}

	var shard fleet.Shard
	if o.shard != "" {
		if shard, err = fleet.ParseShard(o.shard); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadInput, err)
		}
	}

	cache := fleet.NewStrategyCache()
	cfg := fleet.Config{
		Workers:    o.workers,
		Cache:      cache,
		Shard:      shard,
		NoFitCache: o.noFitCache,
		Progress:   o.progress,
	}
	if o.telemetry != nil {
		cfg.Telemetry = o.telemetry.collector()
		cache.Instrument(cfg.Telemetry)
	}
	if len(o.records) > 0 {
		cells := suite.Cells()
		handlers := o.records
		cfg.OnRecord = func(rec fleet.RunRecord) error {
			out := ScenarioRecord{
				Index:    rec.Index,
				Cell:     rec.Cell,
				Strategy: string(cells[rec.Cell].Policy),
				Metrics:  publicMetrics(rec.Metrics),
			}
			for _, h := range handlers {
				if err := h(out); err != nil {
					return err
				}
			}
			return nil
		}
	}

	res, err := fleet.Run(ctx, suite, cfg)
	if err != nil {
		if errors.Is(err, fleet.ErrBadSuite) {
			return nil, fmt.Errorf("%w: %v", ErrBadInput, err)
		}
		return nil, err
	}
	return reportFrom(res, cache.Stats()), nil
}

// StreamSuite runs a suite and yields its per-scenario records as they
// fold, in index order — the iterator form of WithRecordHandler. A non-nil
// error is yielded once, last, if the run fails; breaking out of the loop
// cancels the remaining work. The aggregated report is not produced; use
// RunSuite with WithRecordHandler to stream and aggregate in one pass.
func StreamSuite(ctx context.Context, ref SuiteRef, opts ...Option) iter.Seq2[ScenarioRecord, error] {
	return func(yield func(ScenarioRecord, error) bool) {
		errStop := errors.New("tolerance: stream stopped")
		streamOpts := append(append([]Option(nil), opts...),
			WithRecordHandler(func(rec ScenarioRecord) error {
				if !yield(rec, nil) {
					return errStop
				}
				return nil
			}))
		if _, err := RunSuite(ctx, ref, streamOpts...); err != nil && !errors.Is(err, errStop) {
			yield(ScenarioRecord{}, err)
		}
	}
}

// FleetCellMetrics is one grid cell of a fleet report: a concrete
// model/workload/size/policy configuration with its evaluation metrics
// (means with 95% confidence half-widths) streamed over the cell's seeds.
type FleetCellMetrics struct {
	Strategy              string
	PA, PC1, PC2, PU, Eta float64
	WorkloadLambda        float64
	WorkloadService       float64
	N1, SMax, DeltaR, F   int
	Runs                  int

	Availability, AvailabilityCI      float64
	QuorumAvailability, QuorumCI      float64
	TimeToRecovery, TimeToRecoveryCI  float64
	RecoveryFrequency, RecoveryFreqCI float64
	AvgNodes, AvgNodesCI              float64
	AvgCost, AvgCostCI                float64
}

// FleetReport is the result of one fleet-suite execution.
type FleetReport struct {
	// Suite is the executed suite's name; Seed its master seed.
	Suite string
	Seed  int64
	// Scenarios is the number of emulation runs executed.
	Scenarios int
	// Cells holds one aggregated entry per grid cell, in expansion order.
	Cells []FleetCellMetrics
	// RecoverySolves and ReplicationSolves count the distinct control
	// problems actually solved; CacheHits counts requests the strategy
	// cache answered without solving or rebuilding a policy.
	RecoverySolves    int
	ReplicationSolves int
	CacheHits         int
}

// reportFrom converts the engine result and cache statistics into the
// public report.
func reportFrom(res *fleet.Result, stats fleet.CacheStats) *FleetReport {
	report := &FleetReport{
		Suite:             res.Suite,
		Seed:              res.Seed,
		Scenarios:         res.Scenarios,
		Cells:             make([]FleetCellMetrics, len(res.Cells)),
		RecoverySolves:    int(stats.RecoverySolves),
		ReplicationSolves: int(stats.ReplicationSolves),
		CacheHits:         int(stats.RecoveryHits + stats.ReplicationHits + stats.PolicyHits),
	}
	for i, c := range res.Cells {
		a := c.Aggregate
		report.Cells[i] = FleetCellMetrics{
			Strategy:           string(c.Cell.Policy),
			PA:                 c.Cell.PA,
			PC1:                c.Cell.PC1,
			PC2:                c.Cell.PC2,
			PU:                 c.Cell.PU,
			Eta:                c.Cell.Eta,
			WorkloadLambda:     c.Cell.Workload.Lambda,
			WorkloadService:    c.Cell.Workload.MeanServiceSteps,
			N1:                 c.Cell.N1,
			SMax:               c.Cell.SMax,
			DeltaR:             c.Cell.DeltaR,
			F:                  c.Cell.F,
			Runs:               int(c.Runs),
			Availability:       a.Availability.Mean,
			AvailabilityCI:     a.Availability.CI,
			QuorumAvailability: a.QuorumAvailability.Mean,
			QuorumCI:           a.QuorumAvailability.CI,
			TimeToRecovery:     a.TimeToRecovery.Mean,
			TimeToRecoveryCI:   a.TimeToRecovery.CI,
			RecoveryFrequency:  a.RecoveryFrequency.Mean,
			RecoveryFreqCI:     a.RecoveryFrequency.CI,
			AvgNodes:           a.AvgNodes.Mean,
			AvgNodesCI:         a.AvgNodes.CI,
			AvgCost:            a.Cost.Mean,
			AvgCostCI:          a.Cost.CI,
		}
	}
	return report
}
