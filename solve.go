package tolerance

import (
	"context"
	"fmt"
	"math/rand"

	"tolerance/internal/cmdp"
	"tolerance/internal/nodemodel"
	"tolerance/internal/opt"
	"tolerance/internal/ppo"
	"tolerance/internal/recovery"
	"tolerance/internal/telemetry"
)

// trainingSink registers a training-progress sink on the attached
// collector, or nil when no telemetry is attached (the training loops
// accept nil and skip recording).
func trainingSink(t *Telemetry) *telemetry.Training {
	if t == nil {
		return nil
	}
	return telemetry.NewTraining(t.collector())
}

// Problem is one of the paper's two control problems; RecoveryProblem and
// ReplicationProblem are the implementations.
type Problem interface {
	problem()
}

// RecoveryProblem is Problem 1 (optimal intrusion recovery): when should a
// node recover, given its compromise belief and the BTR bound?
type RecoveryProblem struct {
	// Model holds the node-model parameters (DefaultNodeModel for the
	// paper's Table 8 values).
	Model NodeModel
	// DeltaR is the BTR bound (InfiniteDeltaR for the unconstrained
	// problem).
	DeltaR int
}

func (RecoveryProblem) problem() {}

// ReplicationProblem is Problem 2 (optimal replication factor): how many
// nodes should the system maintain under the availability constraint?
type ReplicationProblem struct {
	// SMax bounds the system size, F is the tolerance threshold.
	SMax, F int
	// EpsilonA is the availability lower bound (eq. 10b).
	EpsilonA float64
	// Q is the per-step probability that a healthy node remains healthy
	// (estimate it with a recovery solve + simulation, or from domain
	// knowledge; §V-A cites Google/Meta/IBM procedures).
	Q float64
}

func (ReplicationProblem) problem() {}

// Solve methods (WithMethod). The Algorithm 1 optimizer names
// (OptimizerCEM, OptimizerDE, OptimizerBO, OptimizerSPSA, OptimizerRandom)
// are also valid recovery methods.
const (
	// MethodDP solves Problem 1 exactly by dynamic programming (default).
	MethodDP = "dp"
	// MethodPPO trains the PPO baseline of Table 2.
	MethodPPO = "ppo"
)

// Optimizers available to Algorithm 1 (Table 2).
const (
	OptimizerCEM    = "cem"
	OptimizerDE     = "de"
	OptimizerBO     = "bo"
	OptimizerSPSA   = "spsa"
	OptimizerRandom = "random"
)

// RecoveryStrategy is a Problem 1 solution: a recovery decision rule over
// (belief, BTR window position). Threshold methods (Theorem 1) expose their
// thresholds; PPO policies decide through the trained network and leave
// Thresholds empty.
type RecoveryStrategy struct {
	// Thresholds are alpha*_k per window position (a single entry when
	// DeltaR is infinite; empty for non-threshold policies such as PPO).
	Thresholds []float64
	// DeltaR is the BTR bound the strategy was computed for.
	DeltaR int
	// ExpectedCost is the estimated long-run average cost J (eq. 5).
	ExpectedCost float64

	inner recovery.Strategy
}

// ShouldRecover applies the strategy.
func (s *RecoveryStrategy) ShouldRecover(belief float64, windowPos int) bool {
	return s.inner.Action(belief, windowPos) == nodemodel.Recover
}

// ReplicationStrategy is the Problem 2 solution: the probability of adding
// a node per healthy-node-count state (Fig 13a).
type ReplicationStrategy struct {
	// AddProbability is pi*(a=1 | s) for s = 0..SMax.
	AddProbability []float64
	// ExpectedNodes is the stationary objective value J (eq. 9).
	ExpectedNodes float64
	// Availability is the achieved stationary availability (eq. 10b).
	Availability float64

	inner *cmdp.Solution
}

// ShouldAdd samples the randomized strategy for state s.
func (r *ReplicationStrategy) ShouldAdd(rng *rand.Rand, s int) bool {
	return r.inner.Sample(rng, s) == 1
}

// Solution is the result of Solve: exactly one of Recovery and Replication
// is set, matching the problem solved.
type Solution struct {
	// Method is the solver that produced the solution ("dp", "cem", ...).
	Method string
	// Recovery is set for a RecoveryProblem.
	Recovery *RecoveryStrategy
	// Replication is set for a ReplicationProblem.
	Replication *ReplicationStrategy
}

// Solve computes the optimal (or learned) strategy for one control problem.
//
// For a RecoveryProblem, WithMethod selects the solver — MethodDP (default)
// computes the exact Theorem 1 thresholds, the Algorithm 1 optimizer names
// learn thresholds by parametric search, and MethodPPO trains the Table 2
// PPO baseline — with WithBudget bounding the training effort and WithSeed
// fixing the training randomness. For a ReplicationProblem, Algorithm 2's
// occupancy-measure linear program is the only method.
//
// Validation failures wrap ErrBadInput; ctx cancellation is honored between
// solver stages.
func Solve(ctx context.Context, p Problem, opts ...Option) (*Solution, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	o := collectOptions(opts)
	if o.budget < 0 {
		return nil, fmt.Errorf("%w: budget %d", ErrBadInput, o.budget)
	}
	switch pr := p.(type) {
	case RecoveryProblem:
		return solveRecovery(ctx, pr, o)
	case ReplicationProblem:
		return solveReplication(pr, o)
	case nil:
		return nil, fmt.Errorf("%w: nil problem", ErrBadInput)
	default:
		return nil, fmt.Errorf("%w: unknown problem type %T", ErrBadInput, p)
	}
}

func solveRecovery(ctx context.Context, pr RecoveryProblem, o options) (*Solution, error) {
	if pr.DeltaR < 0 {
		return nil, fmt.Errorf("%w: deltaR %d", ErrBadInput, pr.DeltaR)
	}
	params := pr.Model.toParams()
	if err := params.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadInput, err)
	}
	method := o.method
	if method == "" {
		method = MethodDP
	}
	seed := o.seed
	if seed == 0 {
		seed = 1
	}
	if o.workers < 0 {
		return nil, fmt.Errorf("%w: workers %d", ErrBadInput, o.workers)
	}
	switch method {
	case MethodDP:
		sol, err := recovery.SolveDP(params, recovery.DPConfig{DeltaR: pr.DeltaR})
		if err != nil {
			return nil, err
		}
		inner := sol.Strategy(pr.DeltaR)
		return &Solution{Method: method, Recovery: &RecoveryStrategy{
			Thresholds:   append([]float64(nil), inner.Thresholds...),
			DeltaR:       pr.DeltaR,
			ExpectedCost: sol.AvgCost,
			inner:        inner,
		}}, nil
	case MethodPPO:
		res, err := ppo.Train(ctx, params, ppo.Config{
			DeltaR:     pr.DeltaR,
			Iterations: o.budget, // zero keeps the ppo default
			Seed:       seed,
			Workers:    o.workers, // zero defaults to GOMAXPROCS
			Telemetry:  trainingSink(o.telemetry),
		})
		if err != nil {
			return nil, err
		}
		return &Solution{Method: method, Recovery: &RecoveryStrategy{
			DeltaR:       pr.DeltaR,
			ExpectedCost: res.Cost,
			inner:        res.Policy,
		}}, nil
	default:
		// Any name in the shared optimizer table is an Algorithm 1 method.
		po, ok := opt.ByName(method)
		if !ok {
			return nil, fmt.Errorf("%w: unknown method %q", ErrBadInput, method)
		}
		budget := o.budget
		if budget == 0 {
			budget = 400
		}
		if budget < 2 {
			return nil, fmt.Errorf("%w: budget %d (Algorithm 1 needs >= 2)", ErrBadInput, budget)
		}
		res, err := recovery.Algorithm1(ctx, params, recovery.Algorithm1Config{
			DeltaR:    pr.DeltaR,
			Optimizer: po,
			Budget:    budget,
			Episodes:  50, // Table 8: M = 50
			Horizon:   200,
			Seed:      seed,
			Workers:   o.workers, // zero defaults to GOMAXPROCS
			Telemetry: trainingSink(o.telemetry),
		})
		if err != nil {
			return nil, err
		}
		return &Solution{Method: method, Recovery: &RecoveryStrategy{
			Thresholds:   append([]float64(nil), res.Strategy.Thresholds...),
			DeltaR:       pr.DeltaR,
			ExpectedCost: res.Cost,
			inner:        res.Strategy,
		}}, nil
	}
}

func solveReplication(pr ReplicationProblem, o options) (*Solution, error) {
	if o.method != "" && o.method != MethodDP {
		return nil, fmt.Errorf("%w: method %q (Algorithm 2's LP is the only replication solver)",
			ErrBadInput, o.method)
	}
	model, err := cmdp.NewBinomialModel(pr.SMax, pr.F, pr.EpsilonA, pr.Q, 0)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadInput, err)
	}
	sol, err := cmdp.Solve(model)
	if err != nil {
		return nil, err
	}
	return &Solution{Method: "lp", Replication: &ReplicationStrategy{
		AddProbability: append([]float64(nil), sol.Policy...),
		ExpectedNodes:  sol.AvgNodes,
		Availability:   sol.Availability,
		inner:          sol,
	}}, nil
}
