// Shards example: the scale-out evaluation workflow end to end, in one
// process — the same steps `cmd/tolerance-fleet` runs across machines:
//
//  1. export a suite definition to JSON (-dump-suite),
//  2. run it as two disjoint shards, each writing a durable record file
//     (-shard i/n -checkpoint),
//  3. kill one shard mid-run — by cancelling its context, exactly what
//     Ctrl-C does — and resume it from its checkpoint (-resume),
//  4. merge the shard files into the full-suite result (-merge),
//
// and then verify the headline property: the merged result is
// byte-identical to running the whole suite on one machine.
//
//	go run ./examples/shards
package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"tolerance/internal/fleet"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	dir, err := os.MkdirTemp("", "tolerance-shards")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	// 1. A small grid, exported to the JSON schema users author by hand.
	suite := fleet.Suite{
		Name:         "shards-demo",
		Description:  "two attack rates x two system sizes, TOLERANCE vs PERIODIC",
		Seed:         11,
		SeedsPerCell: 2,
		Steps:        150,
		FitSamples:   400,
		AttackRates:  []float64{0.05, 0.1},
		N1s:          []int{3, 6},
		Policies:     []fleet.PolicyKind{fleet.PolicyTolerance, fleet.PolicyPeriodic},
	}
	data, err := fleet.DumpSuite(suite)
	if err != nil {
		return err
	}
	suitePath := filepath.Join(dir, "suite.json")
	if err := os.WriteFile(suitePath, data, 0o644); err != nil {
		return err
	}
	loaded, err := fleet.LoadSuiteFile(suitePath)
	if err != nil {
		return err
	}
	fmt.Printf("suite %q: %d scenarios over %d cells (fingerprint %s)\n",
		loaded.Name, loaded.NumScenarios(), loaded.NumCells(), loaded.Fingerprint())

	// 2. Run the grid as two shards, as two machines would, each recording
	// completed scenarios to its own durable file.
	paths := make([]string, 2)
	for i := range paths {
		shard := fleet.Shard{Index: i, Count: 2}
		paths[i] = filepath.Join(dir, fmt.Sprintf("shard%d.jsonl", i))
		if err := runShard(loaded, shard, paths[i], 0); err != nil {
			return err
		}
		fmt.Printf("shard %s: %d scenarios recorded to %s\n",
			shard, len(shard.Indices(loaded.NumScenarios())), filepath.Base(paths[i]))
	}

	// 3. Simulate a crash on shard 0: rerun it but cancel its context after
	// four scenarios (the record file keeps the completed prefix), then
	// resume.
	crashed := filepath.Join(dir, "crashed.jsonl")
	if err := runShard(loaded, fleet.Shard{Index: 0, Count: 2}, crashed, 4); err != nil {
		return err
	}
	ck, err := fleet.ReadCheckpoint(crashed)
	if err != nil {
		return err
	}
	fmt.Printf("crash simulation: killed shard 0/2 with %d of %d scenarios done\n",
		len(ck.Records), len(fleet.Shard{Index: 0, Count: 2}.Indices(loaded.NumScenarios())))
	w, err := fleet.AppendCheckpoint(crashed, ck)
	if err != nil {
		return err
	}
	resumed, err := fleet.Run(context.Background(), loaded, fleet.Config{
		Shard:     fleet.Shard{Index: 0, Count: 2},
		Completed: ck.Records,
		OnRecord:  w.Append,
	})
	if err != nil {
		return err
	}
	if err := w.Close(); err != nil {
		return err
	}
	fmt.Printf("resumed: shard complete with %d scenarios folded\n", resumed.Scenarios)

	// 4. Merge the shard record files — with the resumed file standing in
	// for shard 0 — into the full-suite result.
	mergedSuite, records, err := fleet.ReadShardSet([]string{crashed, paths[1]})
	if err != nil {
		return err
	}
	merged, err := fleet.MergeRecords(mergedSuite, records)
	if err != nil {
		return err
	}

	// Verify: one unsharded run of the same suite, byte for byte.
	whole, err := fleet.Run(context.Background(), loaded, fleet.Config{})
	if err != nil {
		return err
	}
	mergedJSON, _ := json.Marshal(merged)
	wholeJSON, _ := json.Marshal(whole)
	if string(mergedJSON) != string(wholeJSON) {
		return fmt.Errorf("merged result differs from single-machine run")
	}
	fmt.Println("merged 2 shards (one crash-resumed): byte-identical to the single-machine run")

	fmt.Printf("\n%-12s %6s %10s %8s\n", "policy", "N1", "T(A)", "cost")
	for _, c := range merged.Cells {
		fmt.Printf("%-12s %6d %10.3f %8.3f\n",
			c.Cell.Policy, c.Cell.N1, c.Aggregate.Availability.Mean, c.Aggregate.Cost.Mean)
	}
	return nil
}

// runShard executes one shard with a checkpoint file. When killAfter > 0
// the shard's context is cancelled once that many scenarios have been
// recorded — the same signal Ctrl-C sends a real machine — and the worker
// pool drains promptly, leaving the checkpoint with the completed
// index-ordered prefix.
func runShard(suite fleet.Suite, shard fleet.Shard, path string, killAfter int) error {
	w, err := fleet.CreateCheckpoint(path, suite, shard)
	if err != nil {
		return err
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	n := 0
	_, err = fleet.Run(ctx, suite, fleet.Config{
		Shard: shard,
		OnRecord: func(rec fleet.RunRecord) error {
			if err := w.Append(rec); err != nil {
				return err
			}
			n++
			if killAfter > 0 && n >= killAfter {
				cancel() // simulated crash
			}
			return nil
		},
	})
	if err != nil && !(killAfter > 0 && errors.Is(err, context.Canceled)) {
		w.Close()
		return err
	}
	return w.Close()
}
