// Detector tuning: reproduce the sensitivity analysis of Fig 14 — how the
// optimal recovery cost depends on the quality of the intrusion detection
// model, and how estimation error (model mismatch) degrades it.
//
//	go run ./examples/detector-tuning
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"strings"

	"tolerance"
	"tolerance/internal/ids"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("Fig 14 (left): optimal cost J* vs detector quality DKL(Z_H || Z_C)")
	seps := []float64{0.25, 0.4, 0.55, 0.7, 0.85, 1.0}
	pts, err := tolerance.DetectorSensitivity(tolerance.DefaultNodeModel(), seps)
	if err != nil {
		return err
	}
	fmt.Printf("%10s %10s  %s\n", "DKL", "J*", "")
	maxJ := 0.0
	for _, p := range pts {
		if p[1] > maxJ {
			maxJ = p[1]
		}
	}
	for _, p := range pts {
		bar := strings.Repeat("#", int(p[1]/maxJ*40))
		fmt.Printf("%10.3f %10.4f  %s\n", p[0], p[1], bar)
	}
	// Anchor: separation 1.0 is the unscaled Table 8 detector, so the last
	// point closely tracks a direct Problem 1 solve of the default model
	// (the sweep uses a coarser belief grid, hence the small gap).
	base, err := tolerance.Solve(context.Background(), tolerance.RecoveryProblem{
		Model: tolerance.DefaultNodeModel(), DeltaR: tolerance.InfiniteDeltaR,
	})
	if err != nil {
		return err
	}
	fmt.Printf("(direct solve of the default model: J* = %.4f)\n", base.Recovery.ExpectedCost)

	fmt.Println("\nFig 14 (right): model mismatch DKL(Z_C || Ẑ_C) vs sample budget M")
	profile, err := ids.NewBetaBinomialProfile("demo", 0.8, 5, 3, 1.2)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(1))
	fmt.Printf("%10s %14s\n", "M", "mismatch")
	for _, m := range []int{50, 200, 1000, 5000, 25000} {
		fit, err := ids.Fit(rng, profile, m)
		if err != nil {
			return err
		}
		fmt.Printf("%10d %14.5f\n", m, ids.ModelMismatch(profile, fit))
	}

	fmt.Println("\nFig 18: metric ranking by empirical KL divergence")
	ranks, err := ids.RankMetrics(rng, ids.DefaultMetricProfiles(), 25000)
	if err != nil {
		return err
	}
	for _, r := range ranks {
		fmt.Printf("%-32s %8.4f\n", r.Metric, r.Divergence)
	}
	return nil
}
