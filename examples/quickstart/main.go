// Quickstart: solve both TOLERANCE control problems and evaluate the
// resulting strategies against the baselines on the emulated testbed.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"tolerance"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	model := tolerance.DefaultNodeModel()

	// Problem 1: when should a node recover?
	rec, err := tolerance.SolveRecoveryStrategy(model, tolerance.InfiniteDeltaR)
	if err != nil {
		return fmt.Errorf("solve recovery: %w", err)
	}
	fmt.Printf("Problem 1 (optimal intrusion recovery)\n")
	fmt.Printf("  recovery threshold alpha* = %.3f\n", rec.Thresholds[0])
	fmt.Printf("  optimal average cost  J*  = %.4f\n\n", rec.ExpectedCost)

	// Problem 2: when should the system grow?
	rep, err := tolerance.SolveReplicationStrategy(13, 1, 0.9, 0.97)
	if err != nil {
		return fmt.Errorf("solve replication: %w", err)
	}
	fmt.Printf("Problem 2 (optimal replication factor, smax=13, f=1, epsA=0.9)\n")
	fmt.Printf("  expected nodes = %.2f, availability = %.3f\n", rep.ExpectedNodes, rep.Availability)
	fmt.Printf("  pi(add | s):")
	for s, p := range rep.AddProbability {
		if p > 0.001 {
			fmt.Printf(" s=%d:%.2f", s, p)
		}
	}
	fmt.Printf("\n\n")

	// Evaluate TOLERANCE against the baselines (one small Table 7 cell).
	fmt.Printf("Evaluation (N1=6, DeltaR=15, 400 steps, 3 seeds)\n")
	rows, err := tolerance.Compare(tolerance.CompareConfig{
		N1: 6, DeltaR: 15, Steps: 400, Seeds: []int64{1, 2, 3},
	})
	if err != nil {
		return fmt.Errorf("compare: %w", err)
	}
	fmt.Printf("  %-18s %8s %10s %8s\n", "strategy", "T(A)", "T(R)", "F(R)")
	for _, r := range rows {
		fmt.Printf("  %-18s %8.3f %10.2f %8.4f\n",
			r.Strategy, r.Availability, r.TimeToRecovery, r.RecoveryFrequency)
	}
	return nil
}
