// Quickstart: solve both TOLERANCE control problems through the unified
// Solve facade and evaluate the resulting strategies against the baselines
// on the emulated testbed.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"tolerance"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx := context.Background()
	model := tolerance.DefaultNodeModel()

	// Problem 1: when should a node recover? The default method is the
	// exact DP solve; WithMethod("cem") would learn the thresholds with
	// Algorithm 1 instead.
	recSol, err := tolerance.Solve(ctx, tolerance.RecoveryProblem{
		Model:  model,
		DeltaR: tolerance.InfiniteDeltaR,
	})
	if err != nil {
		return fmt.Errorf("solve recovery: %w", err)
	}
	rec := recSol.Recovery
	fmt.Printf("Problem 1 (optimal intrusion recovery, method=%s)\n", recSol.Method)
	fmt.Printf("  recovery threshold alpha* = %.3f\n", rec.Thresholds[0])
	fmt.Printf("  optimal average cost  J*  = %.4f\n\n", rec.ExpectedCost)

	// Problem 2: when should the system grow?
	repSol, err := tolerance.Solve(ctx, tolerance.ReplicationProblem{
		SMax: 13, F: 1, EpsilonA: 0.9, Q: 0.97,
	})
	if err != nil {
		return fmt.Errorf("solve replication: %w", err)
	}
	rep := repSol.Replication
	fmt.Printf("Problem 2 (optimal replication factor, smax=13, f=1, epsA=0.9)\n")
	fmt.Printf("  expected nodes = %.2f, availability = %.3f\n", rep.ExpectedNodes, rep.Availability)
	fmt.Printf("  pi(add | s):")
	for s, p := range rep.AddProbability {
		if p > 0.001 {
			fmt.Printf(" s=%d:%.2f", s, p)
		}
	}
	fmt.Printf("\n\n")

	// Evaluate TOLERANCE against the baselines (one small Table 7 cell).
	fmt.Printf("Evaluation (N1=6, DeltaR=15, 400 steps, 3 seeds)\n")
	rows, err := tolerance.Compare(tolerance.CompareConfig{
		N1: 6, DeltaR: 15, Steps: 400, Seeds: []int64{1, 2, 3},
	})
	if err != nil {
		return fmt.Errorf("compare: %w", err)
	}
	fmt.Printf("  %-18s %8s %10s %8s\n", "strategy", "T(A)", "T(R)", "F(R)")
	for _, r := range rows {
		fmt.Printf("  %-18s %8.3f %10.2f %8.4f\n",
			r.Strategy, r.Availability, r.TimeToRecovery, r.RecoveryFrequency)
	}
	return nil
}
