// Coordinator example: the distributed evaluation workflow end to end, in
// one process — the same protocol `tolerance-fleet -serve` and `-connect`
// speak across machines:
//
//  1. a coordinator takes ownership of a suite and listens on loopback TCP,
//  2. two workers join over the wire, receive the suite definition in the
//     Welcome handshake, and race for index-contiguous scenario leases,
//  3. one worker is killed mid-run — by cancelling its context, exactly
//     what Ctrl-C does — and the coordinator immediately re-leases its
//     unfinished range to the survivor,
//
// and then verify the headline property: the merged result the coordinator
// streams out is byte-identical to running the whole suite on one machine.
//
//	go run ./examples/coordinator
package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"sync"

	"tolerance/internal/fleet"
	"tolerance/internal/transport"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	suite := fleet.Suite{
		Name:         "coordinator-demo",
		Description:  "two attack rates x two system sizes, TOLERANCE vs PERIODIC",
		Seed:         11,
		SeedsPerCell: 2,
		Steps:        150,
		FitSamples:   400,
		AttackRates:  []float64{0.05, 0.1},
		N1s:          []int{3, 6},
		Policies:     []fleet.PolicyKind{fleet.PolicyTolerance, fleet.PolicyPeriodic},
	}

	// The byte-identity baseline: the whole suite on one machine.
	whole, err := fleet.Run(context.Background(), suite, fleet.Config{})
	if err != nil {
		return err
	}
	wholeJSON, _ := json.Marshal(whole)
	fmt.Printf("suite %q: %d scenarios (fingerprint %s), single-machine reference computed\n",
		suite.Name, suite.NumScenarios(), suite.Fingerprint())

	// The coordinator's endpoint. Workers get their own — three TCP peers on
	// loopback, exactly as three machines would look to each other.
	coordEP, err := transport.ListenTCP("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer coordEP.Close()

	ctx := context.Background()
	// Worker 1 lives on its own cancellable context; cancelling it mid-run
	// is the in-process stand-in for Ctrl-C on a worker machine.
	w1ctx, killWorker1 := context.WithCancel(ctx)
	defer killWorker1()

	var wg sync.WaitGroup
	workerErrs := make([]error, 2)
	for i, wctx := range []context.Context{w1ctx, ctx} {
		ep, err := transport.ListenTCP("127.0.0.1:0")
		if err != nil {
			return err
		}
		defer ep.Close()
		wg.Add(1)
		go func(i int, wctx context.Context, ep *transport.TCPEndpoint) {
			defer wg.Done()
			label := i + 1
			workerErrs[i] = fleet.ConnectWorker(wctx, fleet.WorkerConfig{
				Endpoint:    ep,
				Coordinator: coordEP.Addr(),
				Workers:     2,
				Logf: func(format string, args ...any) {
					fmt.Printf("  worker%d: "+format+"\n", append([]any{label}, args...)...)
				},
			})
		}(i, wctx, ep)
	}

	// Kill worker 1 deterministically: the Progress hook runs on the
	// coordinator as the ordered ingest frontier advances, so cancelling at
	// one third of the suite is guaranteed to land mid-run.
	killAt := suite.NumScenarios() / 3
	killed := false
	res, err := fleet.Coordinate(ctx, suite, fleet.CoordinatorConfig{
		Endpoint:       coordEP,
		LeaseScenarios: 2,
		Progress: func(done, total int) {
			if !killed && done >= killAt {
				killed = true
				fmt.Printf("  -- killing worker1 at %d/%d scenarios --\n", done, total)
				killWorker1()
			}
		},
		Logf: func(format string, args ...any) {
			fmt.Printf("  coord: "+format+"\n", args...)
		},
	})
	if err != nil {
		return err
	}
	wg.Wait()
	for i, werr := range workerErrs {
		if werr != nil && !errors.Is(werr, context.Canceled) && !errors.Is(werr, fleet.ErrDrained) {
			return fmt.Errorf("worker%d: %w", i+1, werr)
		}
	}

	resJSON, _ := json.Marshal(res)
	if string(resJSON) != string(wholeJSON) {
		return fmt.Errorf("coordinator result differs from single-machine run")
	}
	fmt.Println("coordinator + 2 workers (one killed mid-run): byte-identical to the single-machine run")

	fmt.Printf("\n%-12s %6s %10s %8s\n", "policy", "N1", "T(A)", "cost")
	for _, c := range res.Cells {
		fmt.Printf("%-12s %6d %10.3f %8.3f\n",
			c.Cell.Policy, c.Cell.N1, c.Aggregate.Availability.Mean, c.Aggregate.Cost.Mean)
	}
	return nil
}
