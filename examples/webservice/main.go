// Webservice: the full §VII proof-of-concept in-process — a replicated
// key-value web service coordinated by MinBFT, a live attacker running
// Table 6 campaigns, node controllers recovering compromised replicas, and
// the system controller evicting/adding nodes through consensus, while a
// client continuously reads and writes.
//
//	go run ./examples/webservice
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"tolerance"
	"tolerance/internal/cmdp"
	"tolerance/internal/core"
	"tolerance/internal/nodemodel"
	"tolerance/internal/recovery"
	"tolerance/internal/replica"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	params := nodemodel.DefaultParams()
	params.PA = 0.08 // lively but survivable attacker for the demo

	model, err := cmdp.NewBinomialModel(7, 1, 0.9, 0.95, 0)
	if err != nil {
		return err
	}
	repSol, err := cmdp.Solve(model)
	if err != nil {
		return err
	}
	sysCtrl, err := core.NewSystemController(repSol, 7, 42)
	if err != nil {
		return err
	}
	// The node controllers run the model-optimal recovery threshold
	// instead of a hand-picked one.
	recSol, err := tolerance.Solve(context.Background(), tolerance.RecoveryProblem{
		Model: tolerance.NodeModel{
			PA: params.PA, PC1: params.PC1, PC2: params.PC2, PU: params.PU, Eta: params.Eta,
		},
		DeltaR: tolerance.InfiniteDeltaR,
	})
	if err != nil {
		return err
	}
	cluster, err := core.NewLiveCluster(core.LiveConfig{
		N1:          5,
		K:           1,
		SMax:        7,
		Params:      params,
		Recovery:    &recovery.ThresholdStrategy{Thresholds: recSol.Recovery.Thresholds, DeltaR: recovery.InfiniteDeltaR},
		Replication: sysCtrl,
		Seed:        7,
		Loss:        0.0005, // §VIII-A: 0.05% packet loss
	})
	if err != nil {
		return err
	}
	defer cluster.Close()

	client, err := cluster.Client("shopper")
	if err != nil {
		return err
	}

	fmt.Println("replicated web service up:", cluster.Members())
	served, failed := 0, 0
	for step := 1; step <= 30; step++ {
		recovered, err := cluster.Step()
		if err != nil {
			return fmt.Errorf("control step %d: %w", step, err)
		}
		if len(recovered) > 0 {
			fmt.Printf("step %2d: recovered %v\n", step, recovered)
		}
		if comp := cluster.CompromisedNodes(); len(comp) > 0 {
			fmt.Printf("step %2d: compromised %v\n", step, comp)
		}
		// The client keeps using the service throughout.
		client.UpdateMembership(cluster.Members(), (len(cluster.Members())-1-1)/2)
		key := fmt.Sprintf("cart-%d", step%3)
		if _, err := client.Submit(replica.Op{
			Type: replica.OpWrite, Key: key, Value: fmt.Sprintf("item-%d", step),
		}); err != nil {
			failed++
		} else {
			served++
		}
		if got, err := client.Submit(replica.Op{Type: replica.OpRead, Key: key}); err == nil {
			_ = got
			served++
		} else {
			failed++
		}
		time.Sleep(20 * time.Millisecond)
	}
	fmt.Printf("\nserved %d requests, %d failed\n", served, failed)
	fmt.Printf("stats: %+v\n", cluster.Stats)
	fmt.Printf("final membership: %v\n", cluster.Members())
	if failed*2 > served {
		return fmt.Errorf("too many failed requests: %d of %d", failed, served+failed)
	}
	fmt.Println("service stayed correct and available throughout the intrusions")
	return nil
}
