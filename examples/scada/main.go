// SCADA scenario: an intrusion-tolerant power-grid control service (the
// paper's motivating safety-critical use case, §I) with frequent node
// crashes — the regime where adaptive replication matters most
// (observation (iii) of §VIII-D).
//
//	go run ./examples/scada
package main

import (
	"context"
	"fmt"
	"log"

	"tolerance"
	"tolerance/internal/baselines"
	"tolerance/internal/cmdp"
	"tolerance/internal/emulation"
	"tolerance/internal/fleet"
	"tolerance/internal/nodemodel"
	"tolerance/internal/recovery"
	"tolerance/internal/strategies"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Harsh environment: higher crash rates than the default model (field
	// deployments on substations).
	params := nodemodel.DefaultParams()
	params.PA = 0.08
	params.PC1 = 5e-3 // frequent hardware crashes
	params.PC2 = 2e-2

	fmt.Println("SCADA scenario: N1 = 9, f = 2, k = 1, crash-heavy environment")

	dp, err := recovery.SolveDP(params, recovery.DPConfig{DeltaR: recovery.InfiniteDeltaR})
	if err != nil {
		return err
	}
	fmt.Printf("recovery threshold alpha* = %.3f (J* = %.4f)\n\n", dp.Thresholds[0], dp.AvgCost)

	model, err := cmdp.NewBinomialModel(13, 2, 0.95, 0.93, 0)
	if err != nil {
		return err
	}
	rep, err := cmdp.Solve(model)
	if err != nil {
		return err
	}

	// TOLERANCE with and without adaptive replication: with frequent
	// crashes the static variant bleeds nodes and loses availability.
	adaptive, err := baselines.NewTolerance(dp.Strategy(recovery.InfiniteDeltaR), rep)
	if err != nil {
		return err
	}
	static, err := baselines.NewTolerance(dp.Strategy(recovery.InfiniteDeltaR), nil)
	if err != nil {
		return err
	}

	// A learned competitor from the strategy registry: Algorithm 1 (CEM)
	// trains thresholds for this exact crash-heavy model — the same
	// constructor path a "learned:cem" policy kind takes in a fleet suite.
	cemStrat, ok := strategies.Lookup("learned:cem")
	if !ok {
		return fmt.Errorf("learned:cem not registered")
	}
	learned, err := cemStrat.Policy(context.Background(), strategies.Spec{
		Params: params, N1: 9, SMax: 13, F: 2, K: 1, DeltaR: 25,
		EpsilonA: 0.95, Seed: 1, Budget: 60, Episodes: 10, Horizon: 100,
	}, fleet.NewStrategyCache())
	if err != nil {
		return err
	}

	fmt.Printf("%-28s %8s %10s %10s %9s %9s\n", "strategy", "T(A)", "T(A,quorum)", "T(R)", "F(R)", "avg N")
	for _, pol := range []baselines.Policy{adaptive, static, learned, baselines.Periodic{}} {
		name := pol.Name()
		if pol == static {
			name = "TOLERANCE (static repl.)"
		}
		agg, err := emulation.RunSeeds(emulation.Scenario{
			N1:     9,
			F:      2,
			DeltaR: 25,
			Steps:  800,
			Params: params,
			Policy: pol,
		}, []int64{1, 2, 3, 4, 5})
		if err != nil {
			return err
		}
		fmt.Printf("%-28s %8.3f %10.3f %10.2f %9.4f %9.2f\n", name,
			agg.Availability.Mean, agg.QuorumAvailability.Mean,
			agg.TimeToRecovery.Mean, agg.RecoveryFrequency.Mean, agg.AvgNodes.Mean)
	}
	fmt.Println("\nWith frequent crashes, the adaptive replication strategy keeps the")
	fmt.Println("replication factor up while the static variant shrinks over time.")

	// MTTF analytics (Fig 6) for capacity planning.
	fmt.Println("\nMTTF without recovery (f=2, k=1):")
	for _, n1 := range []int{7, 9, 11, 13} {
		mttf, err := tolerance.MTTF(n1, 2, 1, (1-params.PA)*(1-params.PC1))
		if err != nil {
			return err
		}
		fmt.Printf("  N1 = %2d: %.1f steps\n", n1, mttf)
	}
	return nil
}
