// Fleet example: run the SCADA-flavored scenario sweep through the v2
// streaming facade and compare the four strategies of Table 7 across the
// crash-severity grid. RunSuite executes all scenarios on a worker pool
// with deterministic seeding — this program prints the same numbers on
// every machine and at every parallelism level — while a record handler
// consumes the per-scenario stream as the run folds.
//
//	go run ./examples/fleet
package main

import (
	"context"
	"fmt"
	"log"

	"tolerance"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("built-in suites:", tolerance.SuiteNames())
	fmt.Println("registered strategies:")
	for _, s := range tolerance.Strategies() {
		fmt.Printf("  %-18s %s\n", s.Name, s.Description)
	}
	fmt.Println()

	// Stream per-scenario records while the run is in flight: here a tiny
	// live tally of scenarios per strategy (a checkpoint writer or a
	// dashboard feed would subscribe the same way).
	streamed := map[string]int{}
	report, err := tolerance.RunSuite(context.Background(),
		tolerance.SuiteByName("scada-sweep"),
		tolerance.WithWorkers(8),
		tolerance.WithRecordHandler(func(rec tolerance.ScenarioRecord) error {
			streamed[rec.Strategy]++
			return nil
		}),
	)
	if err != nil {
		return err
	}
	fmt.Printf("suite %s: %d scenarios, %d distinct control problems solved (%d cache hits)\n",
		report.Suite, report.Scenarios,
		report.RecoverySolves+report.ReplicationSolves, report.CacheHits)
	fmt.Printf("streamed records per strategy: ")
	for _, s := range []string{"TOLERANCE", "NO-RECOVERY", "PERIODIC", "PERIODIC-ADAPTIVE"} {
		fmt.Printf("%s=%d ", s, streamed[s])
	}
	fmt.Printf("\n\n")

	// Average each strategy's metrics over the whole grid: the fleet-level
	// view of Table 7's ordering.
	type totals struct {
		avail, quorum, ttr, cost float64
		n                        int
	}
	byStrategy := map[string]*totals{}
	order := []string{}
	for _, c := range report.Cells {
		t, ok := byStrategy[c.Strategy]
		if !ok {
			t = &totals{}
			byStrategy[c.Strategy] = t
			order = append(order, c.Strategy)
		}
		t.avail += c.Availability
		t.quorum += c.QuorumAvailability
		t.ttr += c.TimeToRecovery
		t.cost += c.AvgCost
		t.n++
	}
	fmt.Printf("%-18s %8s %10s %9s %7s   (mean over %d cells each)\n",
		"strategy", "T(A)", "T(A,quor)", "T(R)", "cost", byStrategy[order[0]].n)
	for _, name := range order {
		t := byStrategy[name]
		n := float64(t.n)
		fmt.Printf("%-18s %8.3f %10.3f %9.1f %7.3f\n",
			name, t.avail/n, t.quorum/n, t.ttr/n, t.cost/n)
	}
	fmt.Println("\nTOLERANCE keeps availability and recovery time ahead of every")
	fmt.Println("baseline across the whole crash-severity grid, at the lowest cost.")
	return nil
}
