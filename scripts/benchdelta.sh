#!/usr/bin/env sh
# benchdelta.sh OLD NEW — benchstat-style comparison of two `go test
# -bench` text outputs: per-benchmark mean ns/op (across -count repeats),
# old vs new, and the relative delta. Pure awk, no external tooling, so it
# runs anywhere CI does.
set -eu
if [ $# -ne 2 ]; then
    echo "usage: benchdelta.sh old.txt new.txt" >&2
    exit 2
fi
awk '
    FNR == 1 { file++ }
    /^Benchmark/ {
        v = ""
        for (i = 2; i < NF; i++) if ($(i + 1) == "ns/op") v = $i
        if (v == "") next
        sum[file, $1] += v
        cnt[file, $1]++
        if (!($1 in seen)) { seen[$1] = ++order; names[order] = $1 }
    }
    END {
        printf "%-48s %14s %14s %9s\n", "benchmark", "old ns/op", "new ns/op", "delta"
        for (k = 1; k <= order; k++) {
            name = names[k]
            o = cnt[1, name] ? sum[1, name] / cnt[1, name] : -1
            n = cnt[2, name] ? sum[2, name] / cnt[2, name] : -1
            if (o < 0) { printf "%-48s %14s %14.0f %9s\n", name, "-", n, "new"; continue }
            if (n < 0) { printf "%-48s %14.0f %14s %9s\n", name, o, "-", "gone"; continue }
            printf "%-48s %14.0f %14.0f %+8.1f%%\n", name, o, n, (n - o) / o * 100
        }
    }
' "$1" "$2"
