#!/usr/bin/env sh
# checklinks.sh — verify that relative markdown links point at files that
# exist. External (http/https/mailto) and intra-page (#anchor) links are
# skipped; a link with an anchor checks only the file part. Run from the
# repository root; exits nonzero listing every broken link.
set -eu

fail=0
for f in $(git ls-files '*.md'); do
    dir=$(dirname "$f")
    for target in $(grep -oE '\]\([^)]+\)' "$f" | sed 's/^](//; s/)$//'); do
        case "$target" in
        http://* | https://* | mailto:* | \#*) continue ;;
        esac
        path=${target%%#*}
        [ -z "$path" ] && continue
        if [ ! -e "$dir/$path" ]; then
            echo "$f: broken link: $target" >&2
            fail=1
        fi
    done
done
exit "$fail"
